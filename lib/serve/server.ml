(* The daemon's moving parts and their threads:

     - one accept thread per listener (polls with a short select timeout
       so drain never races a blocking accept; listener fds are created
       at startup so their numbers sit far below FD_SETSIZE, no matter
       how many connections are live);
     - one reader thread per connection: framing, validation, enqueue,
       error frames — and the accepted/busy/draining backpressure
       answers.  Readers block in [Framing.read] under a SO_RCVTIMEO
       receive timeout and re-check the stop conditions on each expiry,
       so they need no select (no FD_SETSIZE cap) and stay cancellable
       even against a peer stalled in the middle of a frame;
     - [domains] worker participants on a [Core.Parallel.with_pool]
       domain set (the [serve] caller is worker 0): pop, execute via
       [Scheduler], stream frames, append the [done] summary;
     - one watcher thread on a self-pipe, so a signal handler only has
       to write one byte to trigger the drain.

   Writes to one connection are serialized by a per-connection mutex
   (the reader's [accepted] frame must land before the worker's first
   result frame, and two workers may serve one connection's requests
   concurrently).  Connection file descriptors are closed exactly once
   ([closed] under the write mutex): by the reader when it exits with
   no job in flight, by the last finishing job otherwise, and in the
   final cleanup for whatever survives until shutdown.  A reader that
   exits outside of shutdown also unregisters its connection, so a
   long-running daemon does not accumulate dead entries. *)

type conn = {
  conn_id : int;  (* client identity for fairness and telemetry *)
  fd : Unix.file_descr;
  write_mutex : Mutex.t;
  mutable alive : bool;  (* writes allowed *)
  mutable closed : bool;  (* fd closed; never reset *)
  mutable eof : bool;  (* no more requests; close once pending hits 0 *)
  pending : int Atomic.t;  (* accepted jobs not yet completed *)
}

type job = {
  job_id : Obs.Json.t;
  job_conn : conn;
  request : Protocol.request;
  enqueued_at : float;
  span : Telemetry.span;
}

(* One live telemetry subscription (DESIGN.md section 16).  Owned by the
   subscriptions list under [subs_mutex]; mutable cursors are only
   touched by the ticker thread. *)
type sub = {
  sub_conn : conn;
  sub_rid : Obs.Json.t;  (* subscribe request id, tags stream frames *)
  sub_streams : Protocol.stream list;
  sub_interval : float;  (* seconds *)
  mutable sub_due : float;
  mutable sub_metrics_seq : int;
  mutable sub_trace_seq : int;
  mutable sub_cursor : Telemetry.cursor;
  mutable sub_meta_sent : bool;
}

type t = {
  domains : int;
  queue_depth : int;
  max_frame : int;
  handle_signals : bool;
  unix_path : string option;
  queue : job Jobq.t;
  pool : Core.Pool.t;
  started_at : float;
  listeners : (Unix.file_descr * [ `Unix | `Tcp ]) list;
  bound_tcp_port : int option;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  stopped : bool Atomic.t;  (* cleanup began: readers exit *)
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  jobs_per_worker : int array;
  signal_r : Unix.file_descr;
  signal_w : Unix.file_descr;
  mutable served : bool;
  telemetry : Telemetry.t;
  next_conn_id : int Atomic.t;
  subs_mutex : Mutex.t;
  mutable subs : sub list;
}

let poll_interval = 0.05

(* Ticker resolution for telemetry subscriptions: snapshots land within
   one tick of their due time, so the minimum subscription interval the
   protocol accepts (10 ms) is effectively rounded up to this. *)
let tick_interval = 0.02

let pool t = t.pool
let telemetry t = t.telemetry
let draining t = Jobq.draining t.queue
let tcp_port t = t.bound_tcp_port

let drain t = Jobq.drain t.queue

(* --- listeners --- *)

let bind_unix path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  fd

let bind_tcp port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 64
   with e ->
     Unix.close fd;
     raise e);
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let create ?unix_path ?tcp_port ?domains ?(queue_depth = 64)
    ?(max_frame = Framing.default_max_frame) ?(handle_signals = false) () =
  let domains =
    match domains with Some d -> d | None -> Core.Parallel.default_domains ()
  in
  if domains < 1 then invalid_arg "Serve.Server.create: domains < 1";
  if queue_depth < 1 then invalid_arg "Serve.Server.create: queue_depth < 1";
  if unix_path = None && tcp_port = None then
    invalid_arg "Serve.Server.create: no listener (need unix_path or tcp_port)";
  (* A peer that disconnects mid-stream must surface as EPIPE on the
     write, not as a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let unix_listener = Option.map bind_unix unix_path in
  let tcp_listener =
    try Option.map bind_tcp tcp_port
    with e ->
      Option.iter Unix.close unix_listener;
      raise e
  in
  let listeners =
    (match unix_listener with Some fd -> [ (fd, `Unix) ] | None -> [])
    @ match tcp_listener with Some (fd, _) -> [ (fd, `Tcp) ] | None -> []
  in
  let signal_r, signal_w = Unix.pipe () in
  {
    domains;
    queue_depth;
    max_frame;
    handle_signals;
    unix_path;
    queue = Jobq.create ~capacity:queue_depth;
    pool = Core.Pool.create ();
    started_at = Unix.gettimeofday ();
    listeners;
    bound_tcp_port = Option.map snd tcp_listener;
    conns_mutex = Mutex.create ();
    conns = [];
    readers = [];
    stopped = Atomic.make false;
    accepted = Atomic.make 0;
    rejected = Atomic.make 0;
    completed = Atomic.make 0;
    failed = Atomic.make 0;
    jobs_per_worker = Array.make domains 0;
    signal_r;
    signal_w;
    served = false;
    telemetry = Telemetry.create ();
    next_conn_id = Atomic.make 0;
    subs_mutex = Mutex.create ();
    subs = [];
  }

(* --- connection writes --- *)

let close_conn conn =
  Mutex.lock conn.write_mutex;
  if not conn.closed then begin
    conn.closed <- true;
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock conn.write_mutex

(* Wakes a reader blocked mid-frame without racing fd reuse: shutdown
   makes its pending read return EOF but keeps the descriptor number
   reserved until the one true close. *)
let shutdown_conn conn =
  Mutex.lock conn.write_mutex;
  if not conn.closed then
    (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock conn.write_mutex

(* Best-effort frame write: a dead peer must not take a worker (or the
   job it is running) down with it. *)
let send_frame conn ~id frame =
  Mutex.lock conn.write_mutex;
  (if conn.alive then
     try Framing.write_json conn.fd (Protocol.frame_to_json ~id frame)
     with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  Mutex.unlock conn.write_mutex

let job_finished conn =
  if Atomic.fetch_and_add conn.pending (-1) = 1 && conn.eof then
    close_conn conn

(* --- stats --- *)

let pool_snapshot pool =
  {
    Protocol.session_hits = Core.Pool.hits pool;
    session_builds = Core.Pool.builds pool;
    plan_hits = Core.Pool.memo_hits pool;
    plan_builds = Core.Pool.memo_builds pool;
  }

let stats_body t =
  {
    Protocol.queue_depth = Jobq.depth t.queue;
    queue_capacity = t.queue_depth;
    stats_draining = Jobq.draining t.queue;
    uptime_s = Unix.gettimeofday () -. t.started_at;
    accepted = Atomic.get t.accepted;
    rejected = Atomic.get t.rejected;
    completed = Atomic.get t.completed;
    failed = Atomic.get t.failed;
    spans_dropped = Telemetry.spans_dropped t.telemetry;
    workers =
      List.init (Array.length t.jobs_per_worker) (fun i ->
          { Protocol.worker = i; jobs = t.jobs_per_worker.(i) });
    pool = pool_snapshot t.pool;
    rendered = Core.Report.pool_stats t.pool;
  }

(* --- backpressure --- *)

(* The hint is deliberately coarse: long enough that a retry loop does
   not hammer a saturated queue, short enough that a freed slot is found
   promptly.  10 ms per queued job approximates the small-request
   service time; heavyweight jobs simply cost one extra round. *)
let retry_after_ms t = max 10 (10 * Jobq.depth t.queue)

let error_frame code message ?retry_after_ms () =
  Protocol.Error { Protocol.code; message; retry_after_ms }

(* --- telemetry subscriptions --- *)

(* One subscription per connection: re-subscribing replaces the old
   stream set and cadence instead of stacking a second stream. *)
let register_sub t sub =
  Mutex.lock t.subs_mutex;
  t.subs <- sub :: List.filter (fun s -> s.sub_conn != sub.sub_conn) t.subs;
  Mutex.unlock t.subs_mutex

let remove_subs t conn =
  Mutex.lock t.subs_mutex;
  t.subs <- List.filter (fun s -> s.sub_conn != conn) t.subs;
  Mutex.unlock t.subs_mutex

let subs_snapshot t =
  Mutex.lock t.subs_mutex;
  let s = t.subs in
  Mutex.unlock t.subs_mutex;
  s

(* Every energy-jsonl chunk a worker streams to its requester is also
   forwarded to energy subscribers, tagged with their subscribe id. *)
let broadcast_energy t frame =
  List.iter
    (fun sub ->
      if List.mem `Energy sub.sub_streams then
        send_frame sub.sub_conn ~id:sub.sub_rid frame)
    (subs_snapshot t)

let metrics_reply t ~seq =
  Protocol.Metrics_reply
    {
      Protocol.metrics_seq = seq;
      snapshot = Telemetry.snapshot t.telemetry;
      metrics_rendered = Telemetry.render t.telemetry;
    }

(* The ticker serves all subscriptions from one thread with blocking
   best-effort writes: a stalled subscriber can delay its peers'
   snapshots (documented backpressure rule, DESIGN.md section 16) but
   never a worker, and a dead one fails its write, loses [alive], and is
   dropped on the next tick. *)
let ticker_loop t =
  while not (Atomic.get t.stopped) do
    Thread.delay tick_interval;
    let now = Unix.gettimeofday () in
    List.iter
      (fun sub ->
        if not sub.sub_conn.alive then remove_subs t sub.sub_conn
        else if now >= sub.sub_due then begin
          sub.sub_due <- now +. sub.sub_interval;
          if List.mem `Metrics sub.sub_streams then begin
            let seq = sub.sub_metrics_seq in
            sub.sub_metrics_seq <- seq + 1;
            send_frame sub.sub_conn ~id:sub.sub_rid (metrics_reply t ~seq)
          end;
          if List.mem `Trace sub.sub_streams then begin
            let events, cursor, missed =
              Telemetry.chrome_chunk t.telemetry sub.sub_cursor
            in
            sub.sub_cursor <- cursor;
            let events =
              if sub.sub_meta_sent then events
              else begin
                sub.sub_meta_sent <- true;
                Telemetry.chrome_metadata ~workers:t.domains () @ events
              end
            in
            if events <> [] || missed > 0 then begin
              let seq = sub.sub_trace_seq in
              sub.sub_trace_seq <- seq + 1;
              send_frame sub.sub_conn ~id:sub.sub_rid
                (Protocol.Trace_chunk
                   {
                     Protocol.trace_seq = seq;
                     trace_events = events;
                     trace_missed = missed;
                   })
            end
          end
        end)
      (subs_snapshot t)
  done

(* --- reader threads --- *)

let kind_of_request = function
  | Protocol.Run _ -> Telemetry.kind_run
  | Protocol.Explore _ -> Telemetry.kind_explore
  | Protocol.Replay _ -> Telemetry.kind_replay
  | Protocol.Stats -> Telemetry.kind_stats
  | Protocol.Metrics -> Telemetry.kind_metrics
  | Protocol.Subscribe _ -> Telemetry.kind_subscribe
  | Protocol.Unsubscribe -> Telemetry.kind_unsubscribe
  | Protocol.Shutdown -> Telemetry.kind_shutdown

let control_done t ~frames =
  Protocol.Done
    {
      Protocol.frames;
      latency_ms = 0.0;
      done_worker = -1;
      done_pool = pool_snapshot t.pool;
    }

let handle_request t conn ~id request =
  let span =
    Telemetry.span_accept t.telemetry ~conn:conn.conn_id
      ~kind:(kind_of_request request)
  in
  match request with
  | Protocol.Shutdown ->
    (* Control path: the drain flag flips before the ack goes out, so a
       client that saw the ack may rely on the daemon refusing new work. *)
    drain t;
    Telemetry.finish_control t.telemetry span ~frames:1;
    send_frame conn ~id (control_done t ~frames:0)
  | Protocol.Stats ->
    (* Control path: served inline on the reader thread so a daemon
       whose queue is saturated (or draining) stays observable.  Like
       jobs, the span closes before the terminator ships. *)
    send_frame conn ~id (Protocol.Stats_reply (stats_body t));
    Telemetry.finish_control t.telemetry span ~frames:2;
    send_frame conn ~id (control_done t ~frames:1)
  | Protocol.Metrics ->
    send_frame conn ~id (metrics_reply t ~seq:0);
    Telemetry.finish_control t.telemetry span ~frames:2;
    send_frame conn ~id (control_done t ~frames:1)
  | Protocol.Subscribe s ->
    register_sub t
      {
        sub_conn = conn;
        sub_rid = id;
        sub_streams = s.Protocol.streams;
        sub_interval = float_of_int s.Protocol.interval_ms /. 1000.0;
        (* First snapshot lands on the next tick, not an interval out:
           a subscriber sees data immediately. *)
        sub_due = 0.0;
        sub_metrics_seq = 0;
        sub_trace_seq = 0;
        sub_cursor = Telemetry.start_cursor;
        sub_meta_sent = false;
      };
    (* The ack terminates the request; the stream itself is unsolicited
       frames tagged with this request's id, ended by [unsubscribe] or
       disconnect. *)
    Telemetry.finish_control t.telemetry span ~frames:1;
    send_frame conn ~id
      (Protocol.Subscribed
         {
           Protocol.sub_streams = s.Protocol.streams;
           sub_interval_ms = s.Protocol.interval_ms;
         })
  | Protocol.Unsubscribe ->
    remove_subs t conn;
    Telemetry.finish_control t.telemetry span ~frames:1;
    send_frame conn ~id (control_done t ~frames:0)
  | Protocol.Run _ | Protocol.Explore _ | Protocol.Replay _ ->
    let job =
      {
        job_id = id;
        job_conn = conn;
        request;
        enqueued_at = Unix.gettimeofday ();
        span;
      }
    in
    (* Holding the write mutex across push + accepted keeps the
       [accepted] frame ahead of any result frame a fast worker might
       produce; the queue lock nests inside the connection lock only
       here, and workers never take them in the reverse order. *)
    Mutex.lock conn.write_mutex;
    let pushed = Jobq.push t.queue ~client:conn.conn_id job in
    (match pushed with
    | Jobq.Enqueued depth ->
      Atomic.incr t.accepted;
      Atomic.incr conn.pending;
      Telemetry.span_enqueued t.telemetry span ~queue_depth:depth;
      if conn.alive then (
        try Framing.write_json conn.fd
              (Protocol.frame_to_json ~id (Protocol.Accepted depth))
        with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false)
    | Jobq.Full | Jobq.Draining -> ());
    Mutex.unlock conn.write_mutex;
    (match pushed with
    | Jobq.Enqueued _ -> ()
    | Jobq.Full ->
      Atomic.incr t.rejected;
      Telemetry.span_rejected t.telemetry span;
      send_frame conn ~id
        (error_frame Protocol.Busy "queue full"
           ~retry_after_ms:(retry_after_ms t) ())
    | Jobq.Draining ->
      Atomic.incr t.rejected;
      Telemetry.span_rejected t.telemetry span;
      send_frame conn ~id
        (error_frame Protocol.Draining "server is draining" ()))

let handle_payload t conn payload =
  match Obs.Json.of_string payload with
  | Error msg ->
    send_frame conn ~id:Obs.Json.Null
      (error_frame Protocol.Bad_json ("request is not JSON: " ^ msg) ())
  | Ok json -> (
    let id = Protocol.request_id json in
    match Protocol.request_of_json json with
    | Error (code, message) -> send_frame conn ~id (error_frame code message ())
    | Ok request -> handle_request t conn ~id request)

let reader_loop t conn =
  let stop () = Atomic.get t.stopped || not conn.alive in
  let rec loop () =
    if stop () then ()
    else
      match Framing.read ~max_frame:t.max_frame ~stop conn.fd with
      | Framing.Frame payload ->
        (try handle_payload t conn payload
         with e ->
           (* Nothing reaching here may take the reader (and with it
              the connection) down: answer and stay in sync instead.
              [bad_request] rather than [failed] because nothing was
              enqueued — the error frame is the whole response. *)
           send_frame conn ~id:Obs.Json.Null
             (error_frame Protocol.Bad_request
                (Printf.sprintf "request handling failed: %s"
                   (Printexc.to_string e))
                ()));
        loop ()
      | Framing.Stopped -> ()
      | Framing.Closed -> ()
      | Framing.Truncated ->
        (* The stream cannot be resynchronized: answer, then close. *)
        send_frame conn ~id:Obs.Json.Null
          (error_frame Protocol.Bad_frame "truncated frame" ())
      | Framing.Oversized len ->
        if Framing.discard ~stop conn.fd len then begin
          send_frame conn ~id:Obs.Json.Null
            (error_frame Protocol.Oversized
               (Printf.sprintf "frame of %d bytes exceeds limit %d" len
                  t.max_frame)
               ());
          loop ()
        end
        else
          send_frame conn ~id:Obs.Json.Null
            (error_frame Protocol.Bad_frame "truncated frame" ())
      | exception Unix.Unix_error _ -> ()
  in
  loop ();
  (* The connection takes no more requests.  Mark it so the last
     in-flight job closes the fd, close right away when nothing is
     pending (both close paths are idempotent), and outside of global
     shutdown unregister so dead connections do not pile up — during
     shutdown [serve] owns the lists and the final close. *)
  conn.eof <- true;
  (* A disconnecting subscriber must stop costing ticker writes. *)
  remove_subs t conn;
  if Atomic.get conn.pending = 0 then close_conn conn;
  if not (Atomic.get t.stopped) then begin
    let self = Thread.id (Thread.self ()) in
    Mutex.lock t.conns_mutex;
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers;
    Mutex.unlock t.conns_mutex
  end

(* --- accept threads --- *)

let accept_loop t (lfd, kind) =
  let rec loop () =
    if Jobq.draining t.queue then ()
    else
      match Unix.select [ lfd ] [] [] poll_interval with
      | [], _, _ -> loop ()
      | _ -> (
        match Unix.accept lfd with
        | fd, _ ->
          if kind = `Tcp then
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
          (* The receive timeout is the reader's heartbeat: every
             expiry re-checks the stop conditions inside
             [Framing.read], which is what lets readers skip select
             (and its FD_SETSIZE cap) entirely. *)
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_interval
           with Unix.Unix_error _ -> ());
          let conn =
            {
              conn_id = Atomic.fetch_and_add t.next_conn_id 1;
              fd;
              write_mutex = Mutex.create ();
              alive = true;
              closed = false;
              eof = false;
              pending = Atomic.make 0;
            }
          in
          let reader = Thread.create (fun () -> reader_loop t conn) () in
          Mutex.lock t.conns_mutex;
          t.conns <- conn :: t.conns;
          t.readers <- reader :: t.readers;
          Mutex.unlock t.conns_mutex;
          loop ()
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED
                | Unix.EINTR ),
                _,
                _ ) ->
          loop ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  in
  loop ()

(* --- workers --- *)

let run_job t ~worker job =
  t.jobs_per_worker.(worker) <- t.jobs_per_worker.(worker) + 1;
  let conn = job.job_conn in
  let frames = ref 0 in
  let send frame =
    incr frames;
    (match frame with
    | Protocol.Energy _ -> broadcast_energy t frame
    | _ -> ());
    send_frame conn ~id:job.job_id frame
  in
  (try
     Scheduler.execute ~pool:t.pool ~stats:(fun () -> stats_body t) ~send
       job.request;
     Atomic.incr t.completed;
     Telemetry.span_executed t.telemetry job.span ~ok:true
   with e ->
     Atomic.incr t.failed;
     Telemetry.span_executed t.telemetry job.span ~ok:false;
     send
       (error_frame Protocol.Failed
          (Printf.sprintf "job failed: %s" (Printexc.to_string e))
          ()));
  (* The span closes BEFORE the done frame ships: a client that has seen
     its [done] and immediately asks for a metrics snapshot must find
     the job accounted — the reconciliation the soak harness checks. *)
  Telemetry.span_done t.telemetry job.span ~frames:(!frames + 1);
  send_frame conn ~id:job.job_id
    (Protocol.Done
       {
         (* [accepted] counts toward the stream the client saw. *)
         Protocol.frames = !frames + 1;
         latency_ms = (Unix.gettimeofday () -. job.enqueued_at) *. 1000.0;
         done_worker = worker;
         done_pool = pool_snapshot t.pool;
       });
  job_finished conn

let worker_loop t worker =
  let rec loop () =
    match Jobq.pop t.queue with
    | None -> ()
    | Some job ->
      Telemetry.span_dequeued t.telemetry job.span ~worker
        ~queue_depth:(Jobq.depth t.queue);
      run_job t ~worker job;
      loop ()
  in
  loop ()

(* --- signals --- *)

let install_signals t =
  let handle signum =
    (* One byte on the self-pipe; the watcher thread does the real work
       in a normal context. *)
    let previous =
      Sys.signal signum
        (Sys.Signal_handle
           (fun _ ->
             try ignore (Unix.write t.signal_w (Bytes.make 1 '!') 0 1)
             with Unix.Unix_error _ -> ()))
    in
    (signum, previous)
  in
  [ handle Sys.sigint; handle Sys.sigterm ]

let signal_watcher t =
  let buf = Bytes.create 1 in
  match Unix.read t.signal_r buf 0 1 with
  | _ -> drain t (* a signal byte, or EOF when cleanup closes the pipe *)
  | exception Unix.Unix_error _ -> ()

(* --- the daemon --- *)

let serve t =
  if t.served then invalid_arg "Serve.Server.serve: already served";
  t.served <- true;
  let restore = if t.handle_signals then install_signals t else [] in
  let watcher = Thread.create signal_watcher t in
  let ticker = Thread.create ticker_loop t in
  let acceptors = List.map (fun l -> Thread.create (accept_loop t) l) t.listeners in
  (* Worker 0 is this thread; the rest are pool domains.  [iter] returns
     once every worker saw the queue drained and empty. *)
  (if t.domains = 1 then worker_loop t 0
   else
     Core.Parallel.with_pool ~domains:t.domains (fun pool ->
         Core.Parallel.iter ~pool
           (fun worker -> worker_loop t worker)
           (List.init t.domains Fun.id)));
  (* Drained.  Tear down in dependency order: acceptors (no new
     connections), readers (no new requests), then the descriptors. *)
  Atomic.set t.stopped true;
  Thread.join ticker;
  Mutex.lock t.subs_mutex;
  t.subs <- [];
  Mutex.unlock t.subs_mutex;
  List.iter Thread.join acceptors;
  List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
    t.listeners;
  (match t.unix_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  let conns, readers =
    Mutex.lock t.conns_mutex;
    let c = t.conns and r = t.readers in
    t.conns <- [];
    t.readers <- [];
    Mutex.unlock t.conns_mutex;
    (c, r)
  in
  (* Kick readers out of any in-progress read before joining them: the
     receive timeout alone would also get there, shutdown gets there
     now — and a reader parked on a half-sent frame from a stalled peer
     must not be able to park [serve] with it. *)
  List.iter shutdown_conn conns;
  List.iter Thread.join readers;
  List.iter close_conn conns;
  (try Unix.close t.signal_w with Unix.Unix_error _ -> ());
  Thread.join watcher;
  (try Unix.close t.signal_r with Unix.Unix_error _ -> ());
  List.iter (fun (signum, previous) -> Sys.set_signal signum previous) restore
