(** Bounded multi-producer multi-consumer job queue with backpressure.

    Producers are connection reader threads; consumers are the worker
    domains of the {!Server}.  The queue never blocks a producer: when
    full it answers {!Full} immediately and the server turns that into a
    [busy] error frame carrying a retry hint.  Once {!drain} is called
    no new job is accepted, but everything already enqueued is still
    handed out — an accepted job is never lost. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

type push_result =
  | Enqueued of int  (** queue depth after the push, this job included *)
  | Full
  | Draining

val push : 'a t -> 'a -> push_result

val pop : 'a t -> 'a option
(** Blocks until a job is available.  [None] means the queue is draining
    {e and} empty — the consumer should exit; jobs pushed before
    {!drain} are all delivered first. *)

val drain : 'a t -> unit
(** Refuse new pushes, wake every blocked consumer.  Idempotent. *)

val draining : 'a t -> bool
val depth : 'a t -> int
