(** Bounded multi-producer multi-consumer job queue with backpressure
    and per-client round-robin dequeue.

    Producers are connection reader threads; consumers are the worker
    domains of the {!Server}.  The queue never blocks a producer: when
    full it answers {!Full} immediately and the server turns that into a
    [busy] error frame carrying a retry hint.  Once {!drain} is called
    no new job is accepted, but everything already enqueued is still
    handed out — an accepted job is never lost.

    Fairness: each [client] key gets its own FIFO and {!pop} serves
    clients in rotation, so one client pipelining many requests cannot
    starve its peers — a client's own requests still dequeue in order,
    but it waits behind at most one request from each other client.  The
    [capacity] bound covers the total across all clients, so
    backpressure is unchanged from a single FIFO. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

type push_result =
  | Enqueued of int  (** total queue depth after the push, this job included *)
  | Full
  | Draining

val push : 'a t -> client:int -> 'a -> push_result

val pop : 'a t -> 'a option
(** Blocks until a job is available.  [None] means the queue is draining
    {e and} empty — the consumer should exit; jobs pushed before
    {!drain} are all delivered first. *)

val drain : 'a t -> unit
(** Refuse new pushes, wake every blocked consumer.  Idempotent. *)

val draining : 'a t -> bool
val depth : 'a t -> int
