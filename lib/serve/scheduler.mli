(** Job execution: one validated request against the simulation stack.

    Every worker domain calls {!execute} with the {e same} {!Core.Pool.t};
    the pool's [Domain.DLS] storage gives each worker a private free-list
    of reset sessions and a private compiled-plan memo, so repeat queries
    on a warm worker rebuild nothing and re-interpret nothing.  Response
    frames stream through [send] as they are produced (per-row
    exploration results, per-point replay results, energy-profile
    chunks); the server appends the terminating [done] frame.

    Results are bit-identical to the equivalent direct in-process
    {!Core.Runner} / {!Core.Exploration} call: pooled sessions reproduce
    fresh builds exactly (DESIGN.md section 13) and compiled plans
    reproduce interpretation exactly (section 14). *)

val energy_chunk_lines : int
(** Profile jsonl lines per [energy] frame (512). *)

val execute :
  pool:Core.Pool.t ->
  stats:(unit -> Protocol.stats_body) ->
  send:(Protocol.frame -> unit) ->
  Protocol.request ->
  unit
(** Runs a [Run]/[Explore]/[Replay]/[Stats] job.  [Shutdown] is a
    control request the server never forwards here.
    @raise Invalid_argument on [Shutdown].
    Simulation exceptions propagate; the server turns them into a
    [failed] error frame. *)
