let default_max_frame = 16 * 1024 * 1024

type read_result =
  | Frame of string
  | Closed
  | Truncated
  | Oversized of int
  | Stopped

let no_stop () = false

(* Reads exactly [len] bytes into [buf] starting at 0; [`Eof got] when
   the stream ends first ([got] = bytes already read).  A receive
   timeout on the fd surfaces as EAGAIN/EWOULDBLOCK: consult [stop] and
   keep reading while it says false, abandon with [`Stop] once it turns
   true — this is how a server reader stays cancellable even when a
   peer stalls in the middle of a frame. *)
let really_read ?(stop = no_stop) fd buf len =
  let rec loop off =
    if off >= len then `Ok
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if stop () then `Stop else loop off
  in
  loop 0

let read ?(max_frame = default_max_frame) ?stop fd =
  let header = Bytes.create 4 in
  match really_read ?stop fd header 4 with
  | `Eof 0 -> Closed
  | `Eof _ -> Truncated
  | `Stop -> Stopped
  | `Ok ->
    let len =
      (Char.code (Bytes.get header 0) lsl 24)
      lor (Char.code (Bytes.get header 1) lsl 16)
      lor (Char.code (Bytes.get header 2) lsl 8)
      lor Char.code (Bytes.get header 3)
    in
    if len > max_frame then Oversized len
    else begin
      let payload = Bytes.create len in
      match really_read ?stop fd payload len with
      | `Eof _ -> Truncated
      | `Stop -> Stopped
      | `Ok -> Frame (Bytes.unsafe_to_string payload)
    end

let really_write fd buf len =
  let rec loop off =
    if off < len then
      match Unix.write fd buf off (len - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop off
  in
  loop 0

let write fd payload =
  let len = String.length payload in
  if len > 0xFFFF_FFFF then invalid_arg "Serve.Framing.write: payload too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set buf 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 buf 4 len;
  really_write fd buf (4 + len)

let write_json fd json = write fd (Obs.Json.to_string json)

let discard ?(stop = no_stop) fd n =
  let chunk = Bytes.create 65536 in
  let rec loop remaining =
    if remaining <= 0 then true
    else
      match Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) with
      | 0 -> false
      | k -> loop (remaining - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop remaining
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if stop () then false else loop remaining
  in
  loop n
