(** The simulation-service daemon (DESIGN.md section 15).

    A server listens on a Unix-domain socket and/or a loopback TCP port,
    reads length-prefixed {!Obs.Json} request frames ({!Framing}),
    validates them into typed jobs ({!Protocol}) and enqueues them into
    a bounded {!Jobq}.  A {!Core.Parallel.with_pool} domain set drains
    the queue: each worker leases reset sessions and memoized compiled
    plans from one shared {!Core.Pool} ({!Scheduler}), streams response
    frames back as they are produced, and terminates every request with
    a [done] summary frame (latency, worker, pool hit counters).

    Backpressure: a push against a full queue is rejected immediately
    with a [busy] error frame carrying [retry_after_ms] — accepted jobs,
    by contrast, are never lost, not even across a drain.

    Graceful drain ([shutdown] request, {!drain}, or SIGINT/SIGTERM when
    [handle_signals] is set): stop accepting connections, answer new
    requests with [draining], finish every queued and in-flight job,
    then release sockets and return from {!serve}. *)

type t

val create :
  ?unix_path:string ->
  ?tcp_port:int ->
  ?domains:int ->
  ?queue_depth:int ->
  ?max_frame:int ->
  ?handle_signals:bool ->
  unit ->
  t
(** Binds the listeners immediately — a client may connect as soon as
    [create] returns, the backlog holds until {!serve} starts accepting.
    At least one of [unix_path]/[tcp_port] is required ([tcp_port = 0]
    binds an ephemeral port, see {!tcp_port}); a stale socket file at
    [unix_path] is unlinked.  [domains] (default
    {!Core.Parallel.default_domains}) is the total worker count,
    the {!serve}-calling thread included; [queue_depth] (default 64)
    bounds the job queue; [handle_signals] (default [false]) installs
    SIGINT/SIGTERM handlers that initiate a drain.
    @raise Invalid_argument without any listener or with [domains] or
    [queue_depth] below 1. *)

val serve : t -> unit
(** Runs the daemon on the calling thread (which doubles as worker 0)
    until a drain completes.  On return every accepted job has finished,
    all sockets are closed, the Unix socket file is unlinked and the
    signal handlers are restored.  May only be called once. *)

val drain : t -> unit
(** Initiates a graceful drain from any thread.  Idempotent. *)

val draining : t -> bool

val tcp_port : t -> int option
(** The actually bound TCP port (resolves [tcp_port:0]). *)

val pool : t -> Core.Pool.t
(** The server's session/plan pool — its counters feed the [stats]
    request and the [done] frames. *)

val telemetry : t -> Telemetry.t
(** The server's telemetry registry — per-request spans, per-kind and
    per-client histograms, and the rings behind [metrics]/[trace]
    subscription frames.  Useful after {!serve} returns to export a
    whole-daemon trace ([smartcard serve --trace-out]). *)
