(** Typed requests and response frames of the simulation service, with
    their {!Obs.Json} codecs (DESIGN.md section 15).

    A request is one JSON object per frame, carrying a client-chosen
    [id]; every response frame for that request echoes the [id], and the
    stream for one request always terminates with a [done] or [error]
    frame.  Floats cross the wire through {!Obs.Json}'s printer, which
    round-trips IEEE doubles exactly — a decoded energy figure is
    bit-identical to the one the simulation produced. *)

(** {1 Job descriptions} *)

type workload =
  | Table3 of int  (** {!Core.Workloads.table3_trace} with [n] transactions *)
  | Mixed_phase of int  (** {!Core.Workloads.mixed_phase_trace} *)
  | Characterization  (** the 2000-transaction training trace *)
  | Inline of string list
      (** an {!Ec.Trace.to_lines} serialization, shipped by the client *)

val trace_of_workload : workload -> Ec.Trace.t
(** Materializes the descriptor.  @raise Failure on malformed [Inline]
    lines (the request validator turns this into a [bad_request]). *)

type mode = [ `Serial | `Pipelined ]

type run = {
  workload : workload;
  level : Core.Level.t;
  mode : mode;
  estimate : bool;  (** default [true] *)
  profile : bool;  (** stream the per-cycle energy profile as jsonl chunks *)
  compiled : bool;  (** evaluate off a memoized compiled plan (L1/L2) *)
}

(** Multi-master replay target: the workload trace drives the CPU
    master, with the standard DMA and crypto companions appended
    ({!Core.Contention.default_masters}); points evaluate off a memoized
    compiled fabric plan with per-master buckets on each frame. *)
type fabric_spec = {
  fab_policy : Ec.Arbiter.policy;  (** wire: ["fixed"|"rr"|"wrr:w,..."] *)
  fab_topology : Core.Contention.topology;
}

type replay = {
  workload : workload;
  level : Core.Level.t;  (** [L1] or [L2]; [Rtl] is rejected *)
  mode : mode;
  scales : float list;
      (** one evaluation point per entry: the default characterization
          table scaled by the factor *)
  fabric : fabric_spec option;
      (** [None] replays the single-master trace plan, as before *)
}

type explore = {
  applets : string list;  (** by name; empty = all sample applets *)
  configs : string list;  (** by name; empty = the standard grid *)
  level : Core.Level.t;
  adaptive : bool;
      (** run cells through the live adaptive engine
          ({!Hier.Policy.for_exploration}); [level] is then ignored *)
}

(** {1 Telemetry subscriptions (DESIGN.md section 16)} *)

type stream =
  [ `Metrics  (** periodic {!Serve.Telemetry} snapshot + rendered tables *)
  | `Trace  (** Chrome/Perfetto trace-event chunks cut from server spans *)
  | `Energy  (** live copy of every energy-jsonl chunk the daemon streams *)
  ]

type subscribe = {
  streams : stream list;  (** non-empty *)
  interval_ms : int;  (** snapshot cadence, 10..60000; default 500 *)
}

type request =
  | Run of run
  | Explore of explore
  | Replay of replay
  | Stats
  | Metrics
      (** one-shot telemetry snapshot, served inline like [Stats] *)
  | Subscribe of subscribe
  | Unsubscribe
  | Shutdown

(** {1 Response frames} *)

type error_code =
  | Bad_frame  (** truncated stream inside a frame *)
  | Oversized  (** announced payload above the frame limit *)
  | Bad_json  (** payload is not one JSON document *)
  | Bad_request  (** JSON is fine, the request shape is not *)
  | Unknown_type
  | Busy  (** queue full: retry after [retry_after_ms] *)
  | Draining  (** server is shutting down, no new work *)
  | Failed  (** the job raised while executing *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type result_body = {
  level : Core.Level.t;
  cycles : int;
  txns : int;
  beats : int;
  errors : int;
  bus_pj : float;
  component_pj : float;
  transitions : int;
  wall_seconds : float;
}

val result_body_of_runner : Core.Runner.result -> result_body

type row_body = {
  config : string;
  applet : string;
  row_level : Core.Level.t;
  row_cycles : int;
  row_bus_pj : float;
  transactions : int;
  steps : int;
  value : int option;
  correct : bool;
  switches : int option;  (** adaptive rows: spliced provenance summary *)
  error_bound_pj : float option;
}

val row_body_of_exploration : Core.Exploration.row -> row_body

type point_body = {
  point_seq : int;
  scale : float;
  point_bus_pj : float;
  point_cycles : int;
  point_txns : int;
  point_transitions : int;
  point_buckets : float list option;
      (** fabric replays only: per-master attributed energy in master
          order; the wire member is omitted when absent, so
          single-master frames are unchanged *)
}

type pool_stats = {
  session_hits : int;
  session_builds : int;
  plan_hits : int;
  plan_builds : int;
}

type worker_stat = { worker : int; jobs : int }

type stats_body = {
  queue_depth : int;
  queue_capacity : int;
  stats_draining : bool;
  uptime_s : float;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  spans_dropped : int;
      (** telemetry spans overwritten in the server ring before any
          trace chunk could carry them *)
  workers : worker_stat list;
  pool : pool_stats;
  rendered : string;  (** {!Core.Report.pool_stats} of the server pool *)
}

type metrics_body = {
  metrics_seq : int;  (** per-subscription snapshot counter, from 0 *)
  snapshot : Obs.Json.t;  (** [Serve.Telemetry.snapshot] document *)
  metrics_rendered : string;  (** [Serve.Telemetry.render] tables *)
}

type trace_body = {
  trace_seq : int;  (** per-subscription chunk counter, from 0 *)
  trace_events : Obs.Json.t list;  (** Chrome trace-event objects *)
  trace_missed : int;
      (** ring entries overwritten before this chunk was cut — nonzero
          means the trace has a gap *)
}

type subscribed_body = { sub_streams : stream list; sub_interval_ms : int }

type error_body = {
  code : error_code;
  message : string;
  retry_after_ms : int option;  (** [Busy] rejections only *)
}

type done_body = {
  frames : int;  (** response frames before this one, [accepted] included *)
  latency_ms : float;  (** enqueue to completion *)
  done_worker : int;  (** index of the worker domain that served the job *)
  done_pool : pool_stats;  (** server pool counters after the job *)
}

type frame =
  | Accepted of int  (** queue depth at enqueue, this job included *)
  | Result of result_body
  | Row of int * row_body  (** [seq], in grid order *)
  | Point of point_body
  | Energy of int * string list  (** [seq], jsonl lines of a profile chunk *)
  | Stats_reply of stats_body
  | Metrics_reply of metrics_body
  | Trace_chunk of trace_body
  | Subscribed of subscribed_body
      (** subscribe ack — terminates the subscribe request; the stream
          frames that follow are tagged with the same id *)
  | Error of error_body
  | Done of done_body

(** {1 Codecs}

    [id] is the request id the frame belongs to — echoed verbatim, so a
    client that never sent an id gets [Null] back. *)

val request_to_json : id:Obs.Json.t -> request -> Obs.Json.t

val request_of_json :
  Obs.Json.t -> (request, error_code * string) result
(** Validation lives here: unknown ["type"] is [Unknown_type], any
    missing or ill-typed field (including malformed inline trace lines
    and an [Rtl] replay) is [Bad_request]. *)

val frame_to_json : id:Obs.Json.t -> frame -> Obs.Json.t

val frame_of_json : Obs.Json.t -> (Obs.Json.t * frame, string) result
(** Returns the echoed id alongside the decoded frame. *)

val request_id : Obs.Json.t -> Obs.Json.t
(** The ["id"] member of a request document, [Null] when absent — what a
    server echoes back even for requests it cannot decode. *)

val stream_to_wire : stream -> string
val stream_of_wire : string -> stream option
