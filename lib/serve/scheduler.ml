let energy_chunk_lines = 512

(* Compiled plans are memoized per (domain, key) in the server pool.
   The key fingerprints the pure-data job description — the workload
   descriptor, not the materialized trace, so an inline trace keys by
   its serialized lines.  [Runner.compile_trace]'s own memo cannot be
   used here: serving always fills the memories ([fill_memories] is a
   closure, which that memo refuses to fingerprint), so the plan memo
   lives at this layer where the init function is known. *)
let plan_kind : Compile.Plan.t Core.Pool.kind = Core.Pool.kind ()

let workload_key (w : Protocol.workload) =
  match w with
  | Protocol.Table3 n -> ("table3", n, ([] : string list))
  | Protocol.Mixed_phase n -> ("mixed", n, [])
  | Protocol.Characterization -> ("characterization", 0, [])
  | Protocol.Inline lines -> ("inline", 0, lines)

let compiled_plan ~pool ~level ~mode workload =
  let key =
    Core.Pool.fingerprint
      ( "serve-plan",
        Core.Level.to_string level,
        (match mode with `Serial -> "serial" | `Pipelined -> "pipelined"),
        workload_key workload )
  in
  Core.Pool.memo pool plan_kind ~tag:"trace" ~key (fun () ->
      Core.Runner.compile_trace ~level ~mode ~init:Core.Runner.fill_memories
        (Protocol.trace_of_workload workload))

let send_profile ~send profile =
  let rec chunks seq = function
    | [] -> ()
    | lines ->
      let rec split n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | l :: rest -> split (n - 1) (l :: acc) rest
      in
      let chunk, rest = split energy_chunk_lines [] lines in
      send (Protocol.Energy (seq, chunk));
      chunks (seq + 1) rest
  in
  chunks 0 (Power.Profile.to_jsonl_lines profile)

let execute_run ~pool ~send (r : Protocol.run) =
  let result =
    match r.Protocol.level with
    | (Core.Level.L1 | Core.Level.L2) when r.Protocol.compiled ->
      let plan =
        compiled_plan ~pool ~level:r.Protocol.level ~mode:r.Protocol.mode
          r.Protocol.workload
      in
      Core.Runner.replay_compiled ~estimate:r.Protocol.estimate
        ~record_profile:r.Protocol.profile plan
    | _ ->
      Core.Runner.run_trace ~level:r.Protocol.level ~mode:r.Protocol.mode
        ~estimate:r.Protocol.estimate ~record_profile:r.Protocol.profile
        ~init:Core.Runner.fill_memories ~pool
        (Protocol.trace_of_workload r.Protocol.workload)
  in
  (match result.Core.Runner.profile with
  | Some p when r.Protocol.profile -> send_profile ~send p
  | Some _ | None -> ());
  send (Protocol.Result (Protocol.result_body_of_runner result))

let replay_points scales =
  List.map
    (fun scale ->
      {
        Compile.Eval.table =
          Power.Characterization.scale Power.Characterization.default scale;
        l2_params = None;
      })
    scales

(* Multi-master replay: the workload trace drives the CPU master with
   the standard DMA/crypto companions alongside, exactly the wiring of
   [smartcard run --masters].  The fabric plan memoizes in the server
   pool (the ["fabric"] tag), so repeated replays of one configuration
   pay only the multi-point evaluation. *)
let execute_fabric_replay ~pool ~send (r : Protocol.replay)
    (f : Protocol.fabric_spec) =
  let trace = Protocol.trace_of_workload r.Protocol.workload in
  let masters =
    (Core.Contention.Cpu, trace)
    :: List.filter
         (fun (k, _) -> k <> Core.Contention.Cpu)
         (Core.Contention.default_masters
            ~n:(max 64 (Ec.Trace.total_txns trace))
            f.Protocol.fab_topology)
  in
  let plan =
    Core.Contention.compile ~level:r.Protocol.level
      ~policy:f.Protocol.fab_policy ~topology:f.Protocol.fab_topology
      ~mode:r.Protocol.mode ~pool masters
  in
  let outcomes =
    Compile.Eval.eval_fabric_multi plan ~points:(replay_points r.Protocol.scales)
  in
  let m = plan.Compile.Plan.f_meta in
  let txns = Array.fold_left ( + ) 0 m.Compile.Plan.f_txns in
  let transitions =
    plan.Compile.Plan.near.Compile.Plan.meta.Compile.Plan.transitions
    + match plan.Compile.Plan.far_plan with
      | Some p -> p.Compile.Plan.meta.Compile.Plan.transitions
      | None -> 0
  in
  List.iteri
    (fun seq (scale, (o : Compile.Eval.fabric_outcome)) ->
      send
        (Protocol.Point
           {
             Protocol.point_seq = seq;
             scale;
             point_bus_pj = o.Compile.Eval.fabric_pj;
             point_cycles = m.Compile.Plan.f_cycles;
             point_txns = txns;
             point_transitions = transitions;
             point_buckets = Some (Array.to_list o.Compile.Eval.buckets);
           }))
    (List.combine r.Protocol.scales outcomes)

let execute_replay ~pool ~send (r : Protocol.replay) =
  match r.Protocol.fabric with
  | Some f -> execute_fabric_replay ~pool ~send r f
  | None ->
    let plan =
      compiled_plan ~pool ~level:r.Protocol.level ~mode:r.Protocol.mode
        r.Protocol.workload
    in
    let results =
      Core.Runner.replay_multi ~points:(replay_points r.Protocol.scales) plan
    in
    List.iteri
      (fun seq (scale, (result : Core.Runner.result)) ->
        send
          (Protocol.Point
             {
               Protocol.point_seq = seq;
               scale;
               point_bus_pj = result.Core.Runner.bus_pj;
               point_cycles = result.Core.Runner.cycles;
               point_txns = result.Core.Runner.txns;
               point_transitions = result.Core.Runner.transitions;
               point_buckets = None;
             }))
      (List.combine r.Protocol.scales results)

let execute_explore ~pool ~send (e : Protocol.explore) =
  let applets =
    match e.Protocol.applets with
    | [] -> Jcvm.Applets.all
    | names ->
      (* Validation checked the names; keep grid order by request order. *)
      List.map
        (fun n -> List.find (fun a -> a.Jcvm.Applets.name = n) Jcvm.Applets.all)
        names
  in
  let configs =
    match e.Protocol.configs with
    | [] -> Jcvm.Configs.standard
    | names ->
      List.map
        (fun n ->
          List.find (fun c -> c.Jcvm.Configs.name = n) Jcvm.Configs.standard)
        names
  in
  let seq = ref 0 in
  List.iter
    (fun applet ->
      List.iter
        (fun config ->
          let row =
            if e.Protocol.adaptive then
              Core.Exploration.run_one
                ~policy:(Hier.Policy.for_exploration ())
                ~pool ~config applet
            else
              Core.Exploration.run_one ~level:e.Protocol.level ~pool ~config
                applet
          in
          send (Protocol.Row (!seq, Protocol.row_body_of_exploration row));
          incr seq)
        configs)
    applets

let execute ~pool ~stats ~send (request : Protocol.request) =
  match request with
  | Protocol.Run r -> execute_run ~pool ~send r
  | Protocol.Replay r -> execute_replay ~pool ~send r
  | Protocol.Explore e -> execute_explore ~pool ~send e
  | Protocol.Stats -> send (Protocol.Stats_reply (stats ()))
  | Protocol.Metrics | Protocol.Subscribe _ | Protocol.Unsubscribe
  | Protocol.Shutdown ->
    invalid_arg "Serve.Scheduler.execute: control requests never reach workers"
