type endpoint = [ `Unix of string | `Tcp of string * int ]

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable next_id : int;
}

let connect ?(max_frame = Framing.default_max_frame) endpoint =
  (* A daemon that drops the connection must surface as EPIPE, not kill
     the client process with SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd =
    match endpoint with
    | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         raise e);
      fd
    | `Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (addr, port));
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with e ->
         Unix.close fd;
         raise e);
      fd
  in
  { fd; max_frame; next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd t = t.fd

let send ?id t request =
  let id =
    match id with
    | Some id -> id
    | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      id
  in
  Framing.write_json t.fd
    (Protocol.request_to_json ~id:(Obs.Json.Int id) request);
  id

let send_json t json = Framing.write_json t.fd json

let read_frame t =
  match Framing.read ~max_frame:t.max_frame t.fd with
  | Framing.Frame payload -> Obs.Json.of_string payload
  | Framing.Closed -> Error "connection closed"
  | Framing.Truncated -> Error "truncated response frame"
  | Framing.Oversized len ->
    Error (Printf.sprintf "oversized response frame (%d bytes)" len)
  | Framing.Stopped ->
    (* Unreachable: the client never arms a receive timeout. *)
    Error "read interrupted"

let read_typed t = Result.bind (read_frame t) Protocol.frame_of_json

let collect t =
  let rec loop acc =
    match read_typed t with
    | Error _ as e -> e
    | Ok (_, frame) -> (
      let acc = frame :: acc in
      match frame with
      | Protocol.Done _ -> Ok (List.rev acc)
      | Protocol.Error { Protocol.code = Protocol.Failed; _ } ->
        (* A failed job still gets its [done] summary; keep reading so
           the unread terminator cannot desync the next request on this
           connection. *)
        loop acc
      | Protocol.Error _ ->
        (* Rejection-class errors (busy/draining/bad_*/unknown_type)
           are the whole response: nothing follows. *)
        Ok (List.rev acc)
      | _ -> loop acc)
  in
  loop []

let request ?id t req =
  let _ = send ?id t req in
  collect t

(* Open a telemetry subscription: returns the request id tagging every
   stream frame once the daemon acks.  Stream frames are then read with
   [read_typed] at the caller's pace. *)
let subscribe ?id ?(interval_ms = 500) t ~streams =
  let id = send ?id t (Protocol.Subscribe { Protocol.streams; interval_ms }) in
  match read_typed t with
  | Ok (_, Protocol.Subscribed _) -> Ok id
  | Ok (_, Protocol.Error e) -> Error e.Protocol.message
  | Ok _ -> Error "unexpected frame before subscribe ack"
  | Error msg -> Error msg

(* Close the subscription and drain any stream frames still in flight
   ahead of the ack, so the connection is clean for the next request. *)
let unsubscribe t =
  let _ = send t Protocol.Unsubscribe in
  let rec loop () =
    match read_typed t with
    | Ok (_, Protocol.Done _) -> Ok ()
    | Ok (_, Protocol.Error e) -> Error e.Protocol.message
    | Ok _ -> loop ()
    | Error msg -> Error msg
  in
  loop ()

let request_retrying ?id ?(attempts = 10) t req =
  let rec go n =
    match request ?id t req with
    | Ok [ Protocol.Error { Protocol.code = Protocol.Busy; retry_after_ms; _ } ]
      when n > 1 ->
      let ms = Option.value retry_after_ms ~default:10 in
      Thread.delay (float_of_int ms /. 1000.0);
      go (n - 1)
    | r -> r
  in
  go attempts
