(* Command-line front end of the smart-card energy-estimation framework.

   Subcommands map to the paper's experiments:
     tables        - Tables 1-3 and Figure 6
     explore       - section 4.3 HW/SW interface exploration
     run           - assemble and run a program, report cycles and energy
     trace         - capture or replay bus transaction traces
     characterize  - derive and print the per-signal energy table
     disasm        - assemble and list a program *)

open Cmdliner

let level_conv =
  let parse = function
    | "rtl" | "gate" | "gate-level" -> Ok Core.Level.Rtl
    | "l1" | "tl1" | "layer1" -> Ok Core.Level.L1
    | "l2" | "tl2" | "layer2" -> Ok Core.Level.L2
    | "l3" | "tl3" | "layer3" -> Ok Core.Level.L3
    | s -> Error (`Msg (Printf.sprintf "unknown level %S (rtl|l1|l2)" s))
  in
  let print ppf l = Format.pp_print_string ppf (Core.Level.to_string l) in
  Arg.conv (parse, print)

let level_arg =
  Arg.(
    value
    & opt level_conv Core.Level.L1
    & info [ "l"; "level" ] ~docv:"LEVEL"
        ~doc:"Abstraction level: rtl (gate-level reference), l1 or l2.")

(* --pool / --no-pool: session pooling on the commands that run whole
   simulations.  Sweeps default to pooled (rows are bit-identical either
   way, per the Pool acceptance tests); single runs default to fresh. *)
let pool_flag ~default =
  Arg.(
    value
    & vflag default
        [
          ( true,
            info [ "pool" ]
              ~doc:
                "Draw simulation sessions from a pool and reset them in \
                 place instead of rebuilding (default for sweeps; results \
                 are bit-identical either way)." );
          ( false,
            info [ "no-pool" ] ~doc:"Build every simulation session fresh." );
        ])

(* --compiled / --no-compiled: compiled trace replay (DESIGN.md §14) on
   the commands that replay recorded or grid-cell traffic.  The sweep
   default is compiled; single replays default to interpreted. *)
let compiled_flag ~default =
  Arg.(
    value
    & vflag default
        [
          ( true,
            info [ "compiled" ]
              ~doc:
                "Compile the traffic into a replay plan once and fold the \
                 energy off it (default for sweeps; results are \
                 bit-identical to interpretation).  Ignored at the \
                 gate level and whenever an event sink is attached \
                 (--trace-out/--metrics): those runs always interpret." );
          ( false,
            info [ "no-compiled" ]
              ~doc:"Interpret every replay through the full bus model." );
        ])

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* Read to EOF rather than seeking, so pipes work too. *)
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec loop () =
        let n = input ic chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        end
      in
      loop ();
      Buffer.contents buf)

(* --- observability options shared by run and trace replay --- *)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE.json"
        ~doc:
          "Write the run as Chrome trace-event JSON to $(docv) (open in \
           Perfetto or chrome://tracing).  The per-cycle energy profile is \
           written next to it as FILE.energy.jsonl.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print simulator metrics (counters and histograms) after the run.")

(* Track names for the Chrome export.  A default platform always maps
   the same slaves in the same decoder order, so a throwaway platform is
   the cheapest authoritative source. *)
let platform_slave_names () =
  let kernel = Sim.Kernel.create () in
  let platform = Soc.Platform.create ~kernel () in
  Array.of_list
    (List.map
       (fun (s : Ec.Slave.t) -> s.Ec.Slave.cfg.Ec.Slave_cfg.name)
       (Ec.Decoder.slaves (Soc.Platform.decoder platform)))

let make_sink ~trace_out ~metrics =
  if trace_out <> None || metrics then Some (Obs.Sink.create ()) else None

let energy_jsonl_path path = Filename.remove_extension path ^ ".energy.jsonl"

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let finish_obs ?profile ~trace_out ~metrics sink =
  match sink with
  | None -> ()
  | Some s ->
    (match trace_out with
    | None -> ()
    | Some path ->
      Obs.Chrome.write ?profile ~slave_names:(platform_slave_names ()) ~path s;
      let dropped = Obs.Sink.dropped s in
      Printf.printf "chrome trace written to %s (%d events%s)\n" path
        (Obs.Sink.length s)
        (if dropped = 0 then "" else Printf.sprintf ", %d dropped" dropped);
      (match profile with
      | None -> ()
      | Some p ->
        let jsonl = energy_jsonl_path path in
        write_lines jsonl (Power.Profile.to_jsonl_lines p);
        Printf.printf "energy profile written to %s (%d cycles)\n" jsonl
          (Power.Profile.length p)));
    if metrics then begin
      print_newline ();
      print_endline (Core.Report.metrics (Obs.Sink.metrics s))
    end

(* --- tables --- *)

let tables_cmd =
  let doc = "Regenerate the paper's Tables 1-3 and Figure 6." in
  let txns =
    Arg.(
      value & opt int 20_000
      & info [ "txns" ] ~docv:"N" ~doc:"Transactions for the Table 3 measurement.")
  in
  let run txns =
    let rows = Core.Experiments.run_accuracy () in
    print_endline (Core.Experiments.render_table1 rows);
    print_newline ();
    print_endline (Core.Experiments.render_table2 rows);
    print_newline ();
    print_endline
      (Core.Experiments.render_table3 (Core.Experiments.run_performance ~txns ()));
    print_newline ();
    print_endline (Core.Experiments.render_figure6 (Core.Experiments.run_figure6 ()))
  in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ txns)

(* --- explore --- *)

let explore_cmd =
  let doc = "HW/SW interface exploration of the Java Card VM (section 4.3)." in
  let applet =
    Arg.(
      value & opt (some string) None
      & info [ "applet" ] ~docv:"NAME"
          ~doc:"Restrict to one applet (wallet, crc16, sort, fib).")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Run every grid cell through the live adaptive engine instead of \
             one fixed level (--level is then ignored); rows grow spliced \
             provenance columns.")
  in
  let policy =
    Arg.(
      value
      & opt (some (enum [ ("auto", `Auto); ("l1", `L1); ("l2", `L2) ])) None
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Adaptive policy (implies --adaptive): auto is the exploration \
             preset (layer 2 base, layer-1 refinement windows); l1/l2 pin \
             the session to one level — the degenerate check that must \
             reproduce the fixed-level rows bit-for-bit.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Instead of one sweep, run pure layer 1, pure layer 2 and the \
             adaptive sweep back to back and print the wall-clock/energy \
             comparison table (EXPERIMENTS.md).")
  in
  let run level applet adaptive policy compare trace_out pool compiled =
    let applets =
      match applet with
      | None -> Jcvm.Applets.all
      | Some name -> (
        match
          List.find_opt (fun a -> a.Jcvm.Applets.name = name) Jcvm.Applets.all
        with
        | Some a -> [ a ]
        | None ->
          Printf.eprintf "unknown applet %S\n" name;
          exit 1)
    in
    let policy =
      if not (adaptive || policy <> None) then None
      else
        Some
          (match policy with
          | None | Some `Auto -> Hier.Policy.for_exploration ()
          | Some `L1 -> Hier.Policy.constant Hier.Level.L1
          | Some `L2 -> Hier.Policy.constant Hier.Level.L2)
    in
    if compare then
      print_endline
        (Core.Experiments.render_exploration_comparison
           (Core.Experiments.run_exploration_comparison ~applets ?policy ~pool
              ()))
    else
      let rows =
        match trace_out with
        | None -> (
          match policy with
          | None -> Core.Exploration.run ~level ~compiled ~applets ~pool ()
          | Some policy -> Core.Exploration.run ~policy ~applets ~pool ())
        | Some stem ->
          (* Per-row Chrome traces: give each grid cell its own sink and
             write <stem>-<applet>-<config>.json, so one row's window
             lifecycle can be inspected in Perfetto in isolation. *)
          let stem = Filename.remove_extension stem in
          let slave_names = platform_slave_names () in
          List.concat_map
            (fun applet ->
              List.map
                (fun config ->
                  let sink = Obs.Sink.create () in
                  let row =
                    match policy with
                    | None ->
                      Core.Exploration.run_one ~level ~sink ~config applet
                    | Some policy ->
                      Core.Exploration.run_one ~policy ~sink ~config applet
                  in
                  let path =
                    Printf.sprintf "%s-%s-%s.json" stem
                      applet.Jcvm.Applets.name config.Jcvm.Configs.name
                  in
                  Obs.Chrome.write ~slave_names ~path sink;
                  Printf.printf "chrome trace written to %s (%d events)\n"
                    path (Obs.Sink.length sink);
                  row)
                Jcvm.Configs.standard)
            applets
      in
      print_endline (Core.Exploration.render rows)
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ level_arg $ applet $ adaptive $ policy $ compare
      $ trace_out_arg $ pool_flag ~default:true $ compiled_flag ~default:true)

(* --- run --- *)

let arbiter_conv =
  let parse s =
    match Ec.Arbiter.policy_of_string s with
    | Some p -> Ok p
    | None ->
      Error (`Msg (Printf.sprintf "unknown arbiter %S (fixed|rr|wrr:w0,w1,..)" s))
  in
  Arg.conv (parse, fun fmt p -> Format.pp_print_string fmt (Ec.Arbiter.policy_to_string p))

let topology_conv =
  let parse s =
    match Core.Contention.topology_of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown topology %S (single|bridged)" s))
  in
  Arg.conv
    (parse, fun fmt t -> Format.pp_print_string fmt (Core.Contention.topology_to_string t))

let masters_conv =
  let parse s =
    match Core.Contention.kind_of_string s with
    | Some Core.Contention.Cpu | None ->
      Error (`Msg (Printf.sprintf "unknown master %S (dma|crypto)" s))
    | Some k -> Ok k
  in
  Arg.conv
    (parse, fun fmt k -> Format.pp_print_string fmt (Core.Contention.kind_to_string k))

let render_contention (r : Core.Contention.result) =
  Printf.printf "fabric:       %s arbiter, %s topology\n"
    (Ec.Arbiter.policy_to_string r.Core.Contention.policy)
    (Core.Contention.topology_to_string r.Core.Contention.topology);
  Printf.printf "cycles:       %d\n" r.Core.Contention.cycles;
  Printf.printf "fabric energy: %.1f pJ (bus models report %.1f; bridge %.1f over %d crossings)\n"
    r.Core.Contention.fabric_pj r.Core.Contention.bus_pj
    r.Core.Contention.bridge_pj r.Core.Contention.crossings;
  let body =
    List.map
      (fun (row : Core.Contention.master_row) ->
        [
          Core.Contention.kind_to_string row.Core.Contention.kind;
          string_of_int row.Core.Contention.txns;
          string_of_int row.Core.Contention.beats;
          string_of_int row.Core.Contention.errors;
          string_of_int row.Core.Contention.grants;
          Printf.sprintf "%.1f" row.Core.Contention.energy_pj;
          (if r.Core.Contention.fabric_pj > 0.0 then
             Printf.sprintf "%.1f%%"
               (100.0 *. row.Core.Contention.energy_pj
               /. r.Core.Contention.fabric_pj)
           else "-");
        ])
      r.Core.Contention.rows
  in
  print_string
    (Core.Report.table
       ~header:[ "Master"; "Txns"; "Beats"; "Errors"; "Grants"; "pJ"; "Share" ]
       body)

let pp_fault = function
  | Soc.Cpu.Bus_error addr -> Printf.sprintf "bus error at %#x" addr
  | Soc.Cpu.Misaligned addr -> Printf.sprintf "misaligned access at %#x" addr
  | Soc.Cpu.Illegal_instruction w -> Printf.sprintf "illegal instruction %#010x" w

let run_cmd =
  let doc = "Assemble a program, run it on the simulated card, report stats." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  let profile =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"CSV"
          ~doc:"Write the per-cycle bus energy profile to $(docv).")
  in
  let vcd =
    Arg.(
      value & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE"
          ~doc:"Write a VCD waveform of the run (gate-level only).")
  in
  let compiled =
    Arg.(
      value & flag
      & info [ "compiled" ]
          ~doc:
            "After the run, capture the program's bus trace, compile it \
             into a replay plan and print the compiled-replay figures at \
             --level (l1 or l2) — the microsecond-scale path a sweep over \
             this program's traffic would take.")
  in
  let masters_arg =
    Arg.(
      value & opt (list masters_conv) []
      & info [ "masters" ] ~docv:"KINDS"
          ~doc:
            "Comma-separated extra bus masters (dma, crypto) contending \
             with the program's traffic through the arbitrated fabric. \
             The program's captured bus trace drives master 0 (the CPU).")
  in
  let arbiter_arg =
    Arg.(
      value & opt arbiter_conv Ec.Arbiter.Round_robin
      & info [ "arbiter" ] ~docv:"POLICY"
          ~doc:"Fabric arbitration policy: fixed, rr or wrr:w0,w1,...")
  in
  let topology_arg =
    Arg.(
      value
      & opt topology_conv Core.Contention.Single
      & info [ "topology" ] ~docv:"TOPO"
          ~doc:
            "Bus topology for --masters runs: single (one shared bus) or \
             bridged (DMA source behind a bridged far bus).")
  in
  let run level file profile_out vcd_out trace_out metrics pool compiled
      masters arbiter topology =
    if masters <> [] then begin
      let program = Soc.Asm.assemble (read_file file) in
      let cpu_trace = Core.Runner.capture_cpu_trace program in
      let n = List.length masters + 1 in
      let extra =
        List.filter
          (fun (k, _) -> List.mem k masters)
          (Core.Contention.default_masters
             ~n:(max 64 (Ec.Trace.total_txns cpu_trace))
             topology)
      in
      Printf.printf "level:        %s (%d masters)\n"
        (Core.Level.to_string level) n;
      let spool = if pool then Some (Core.Pool.create ()) else None in
      render_contention
        (Core.Contention.run ~level ~policy:arbiter ~topology ~compiled
           ?pool:spool
           ((Core.Contention.Cpu, cpu_trace) :: extra));
      match spool with
      | Some p when metrics ->
        print_newline ();
        print_endline (Core.Report.pool_stats p)
      | Some _ | None -> ()
    end
    else begin
    let program = Soc.Asm.assemble (read_file file) in
    let record_profile = profile_out <> None || trace_out <> None in
    let sink = make_sink ~trace_out ~metrics in
    (* One run draws one session; the flag mainly proves the pooled path
       reports the same numbers (a VCD or sink forces a fresh build). *)
    let spool = if pool then Some (Core.Pool.create ()) else None in
    let result =
      Core.Runner.run_program ~level ~record_profile ?vcd:vcd_out ?sink
        ?pool:spool program
    in
    let r = result.Core.Runner.result in
    Printf.printf "level:        %s\n" (Core.Level.to_string level);
    Printf.printf "instructions: %d\n" result.Core.Runner.instructions;
    Printf.printf "cycles:       %d (CPI %.2f)\n" r.Core.Runner.cycles
      (float_of_int r.Core.Runner.cycles
      /. float_of_int (max 1 result.Core.Runner.instructions));
    Printf.printf "bus txns:     %d (%d beats)\n" r.Core.Runner.txns
      r.Core.Runner.beats;
    Printf.printf "bus energy:   %.1f pJ\n" r.Core.Runner.bus_pj;
    Printf.printf "peripherals:  %.1f pJ\n" r.Core.Runner.component_pj;
    (match result.Core.Runner.fault with
    | None -> Printf.printf "halted normally\n"
    | Some f -> Printf.printf "FAULT: %s\n" (pp_fault f));
    let total_pj = r.Core.Runner.bus_pj +. r.Core.Runner.component_pj in
    List.iter
      (fun limit ->
        Format.printf "budget:       %a@."
          Power.Budget.pp_verdict
          (Power.Budget.check limit ~energy_pj:total_pj
             ~cycles:r.Core.Runner.cycles))
      [ Power.Budget.gsm_contact; Power.Budget.contactless_rf ];
    if result.Core.Runner.uart_output <> "" then
      Printf.printf "uart: %S\n" result.Core.Runner.uart_output;
    (match profile_out, r.Core.Runner.profile with
    | Some path, Some p ->
      write_lines path (Power.Profile.to_csv_lines p);
      Printf.printf "profile written to %s (%d cycles)\n" path
        (Power.Profile.length p)
    | Some _, None | None, _ -> ());
    finish_obs ?profile:r.Core.Runner.profile ~trace_out ~metrics sink;
    (match spool with
    | Some p when metrics ->
      print_newline ();
      print_endline (Core.Report.pool_stats p)
    | Some _ | None -> ());
    if compiled then begin
      match level with
      | Core.Level.Rtl | Core.Level.L3 ->
        prerr_endline "--compiled needs --level l1 or l2; skipping"
      | Core.Level.L1 | Core.Level.L2 ->
        let trace = Core.Runner.capture_cpu_trace program in
        let plan =
          Core.Runner.compile_trace ~level ~init:Core.Runner.fill_memories
            ?pool:spool trace
        in
        let cr = Core.Runner.replay_compiled plan in
        Printf.printf
          "compiled replay (%s): %d txns, %d cycles, %.1f pJ bus in %.1f us\n"
          (Core.Level.to_string level) cr.Core.Runner.txns
          cr.Core.Runner.cycles cr.Core.Runner.bus_pj
          (cr.Core.Runner.wall_seconds *. 1e6)
    end
    end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ level_arg $ file $ profile $ vcd $ trace_out_arg
      $ metrics_arg $ pool_flag ~default:false $ compiled $ masters_arg
      $ arbiter_arg $ topology_arg)

(* --- fabric --- *)

let fabric_cmd =
  let doc =
    "Run the multi-master contention study: arbiter policy x topology x \
     level over the standard CPU/DMA/crypto stimulus."
  in
  let n =
    Arg.(
      value & opt int 512
      & info [ "n" ] ~docv:"N"
          ~doc:"Stimulus size: CPU transactions / DMA words (default 512).")
  in
  let level_opt =
    Arg.(
      value & opt (some level_conv) None
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:"Restrict the study to one abstraction level.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per grid cell (bench --json line \
             conventions) with per-master energy buckets, instead of the \
             rendered table.")
  in
  let domains_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:"Domains to map the grid across (default: all cores).")
  in
  let level_wire = function
    | Core.Level.Rtl -> "rtl"
    | Core.Level.L1 -> "l1"
    | Core.Level.L2 -> "l2"
    | Core.Level.L3 -> "l3"
  in
  let cell_json (r : Core.Contention.result) =
    let module J = Obs.Json in
    J.Obj
      [
        ("group", J.String "fabric/contention");
        ( "name",
          J.String
            (Printf.sprintf "%s/%s/%s"
               (level_wire r.Core.Contention.level)
               (Ec.Arbiter.policy_to_string r.Core.Contention.policy)
               (Core.Contention.topology_to_string r.Core.Contention.topology))
        );
        ("level", J.String (level_wire r.Core.Contention.level));
        ( "policy",
          J.String (Ec.Arbiter.policy_to_string r.Core.Contention.policy) );
        ( "topology",
          J.String
            (Core.Contention.topology_to_string r.Core.Contention.topology) );
        ("cycles", J.Int r.Core.Contention.cycles);
        ("crossings", J.Int r.Core.Contention.crossings);
        ("fabric_pj", J.Float r.Core.Contention.fabric_pj);
        ("bus_pj", J.Float r.Core.Contention.bus_pj);
        ("bridge_pj", J.Float r.Core.Contention.bridge_pj);
        ("wall_seconds", J.Float r.Core.Contention.wall_seconds);
        ( "masters",
          J.List
            (List.map
               (fun (m : Core.Contention.master_row) ->
                 J.Obj
                   [
                     ( "kind",
                       J.String (Core.Contention.kind_to_string
                                   m.Core.Contention.kind) );
                     ("txns", J.Int m.Core.Contention.txns);
                     ("beats", J.Int m.Core.Contention.beats);
                     ("errors", J.Int m.Core.Contention.errors);
                     ("grants", J.Int m.Core.Contention.grants);
                     ("energy_pj", J.Float m.Core.Contention.energy_pj);
                   ])
               r.Core.Contention.rows) );
      ]
  in
  let run n level json domains pooled compiled =
    let levels =
      match level with Some l -> [ l ] | None -> Core.Level.timed
    in
    let pool = if pooled then Some (Core.Pool.create ()) else None in
    let results =
      Core.Contention.study ~n ~levels ~compiled ?pool ?domains ()
    in
    if json then
      List.iter
        (fun r -> print_endline (Obs.Json.to_string (cell_json r)))
        results
    else print_string (Core.Contention.render_study results)
  in
  Cmd.v (Cmd.info "fabric" ~doc)
    Term.(
      const run $ n $ level_opt $ json_flag $ domains_opt
      $ pool_flag ~default:true
      $ compiled_flag ~default:true)

(* --- trace --- *)

let trace_capture_cmd =
  let doc = "Run a program on the gate-level model and record its bus trace." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let out =
    Arg.(value & opt string "trace.txt" & info [ "o" ] ~docv:"OUT" ~doc:"Output file.")
  in
  let run file out =
    let program = Soc.Asm.assemble (read_file file) in
    let trace = Core.Runner.capture_cpu_trace program in
    Ec.Trace.save out trace;
    Printf.printf "captured %d transactions (%d beats) to %s\n"
      (Ec.Trace.total_txns trace) (Ec.Trace.total_beats trace) out
  in
  Cmd.v (Cmd.info "capture" ~doc) Term.(const run $ file $ out)

let trace_replay_cmd =
  let doc = "Replay a recorded trace through a bus model." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let serial =
    Arg.(value & flag & info [ "serial" ] ~doc:"Wait for each transaction.")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:
            "Replay through the adaptive mixed-level engine (the default \
             policy of the experiments) instead of a single level; \
             --level is ignored.")
  in
  let run level file serial adaptive trace_out metrics compiled =
    let trace = Ec.Trace.load file in
    let mode = if serial then `Serial else `Pipelined in
    let sink = make_sink ~trace_out ~metrics in
    let record_profile = trace_out <> None in
    if adaptive then begin
      let r =
        Core.Runner.run_adaptive ~mode ~record_profile
          ~init:Core.Runner.fill_memories ?sink
          ~policy:Core.Experiments.adaptive_policy trace
      in
      Printf.printf "adaptive mixed-level replay (%d windows, %d switches)\n"
        (List.length r.Core.Runner.splice.Hier.Splice.windows)
        r.Core.Runner.switches;
      Printf.printf "txns:       %d (%d errors)\n" r.Core.Runner.txns
        r.Core.Runner.errors;
      Printf.printf "cycles:     %d\n" r.Core.Runner.cycles;
      Printf.printf "bus energy: %.1f pJ\n" r.Core.Runner.bus_pj;
      let profile =
        if record_profile then Some (Hier.Splice.profile r.Core.Runner.splice)
        else None
      in
      finish_obs ?profile ~trace_out ~metrics sink
    end
    else begin
      let r =
        Core.Runner.run_trace ~level ~mode ~record_profile
          ~init:Core.Runner.fill_memories ?sink ~compiled trace
      in
      Printf.printf "level:      %s\n" (Core.Level.to_string level);
      Printf.printf "txns:       %d (%d errors)\n" r.Core.Runner.txns
        r.Core.Runner.errors;
      Printf.printf "cycles:     %d\n" r.Core.Runner.cycles;
      Printf.printf "bus energy: %.1f pJ\n" r.Core.Runner.bus_pj;
      finish_obs ?profile:r.Core.Runner.profile ~trace_out ~metrics sink
    end
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const run $ level_arg $ file $ serial $ adaptive $ trace_out_arg
      $ metrics_arg $ compiled_flag ~default:false)

let trace_cmd =
  let doc = "Capture or replay bus transaction traces." in
  Cmd.group (Cmd.info "trace" ~doc) [ trace_capture_cmd; trace_replay_cmd ]

(* --- cache --- *)

let cache_cmd =
  let doc = "Instruction-cache size exploration over a program." in
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let run level file =
    let name, program =
      match file with
      | Some path -> (Filename.basename path, Soc.Asm.assemble (read_file path))
      | None ->
        ("bubble-sort", Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:10))
    in
    print_endline (Core.Cache_study.render (Core.Cache_study.run ~level ~name program))
  in
  Cmd.v (Cmd.info "cache" ~doc) Term.(const run $ level_arg $ file)

(* --- coding --- *)

let coding_cmd =
  let doc = "Bus coding study (bus-invert, Gray) over a program's traffic." in
  let file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.s")
  in
  let run file =
    let study =
      match file with
      | Some path ->
        Core.Coding_study.run_program ~name:(Filename.basename path)
          (Soc.Asm.assemble (read_file path))
      | None ->
        Core.Coding_study.run_program ~name:"bus-exercise"
          (Soc.Asm.assemble Core.Test_programs.bus_exercise)
    in
    print_endline (Core.Coding_study.render study)
  in
  Cmd.v (Cmd.info "coding" ~doc) Term.(const run $ file)

(* --- ablate --- *)

let ablate_cmd =
  let doc = "Sensitivity studies of the modelling choices (slow)." in
  let run () = print_endline (Core.Ablations.run_all ()) in
  Cmd.v (Cmd.info "ablate" ~doc) Term.(const run $ const ())

(* --- characterize --- *)

let characterize_cmd =
  let doc =
    "Derive the per-signal energy characterization from the gate-level model."
  in
  let run () =
    let table = Core.Runner.characterize () in
    Format.printf "%a@." Power.Characterization.pp table;
    Format.printf "per-wire energy per transition [pJ]:@.";
    List.iter
      (fun id ->
        Format.printf "  %-12s %.4f@." (Ec.Signals.to_string id)
          (Power.Characterization.energy_per_transition table id))
      Ec.Signals.all
  in
  Cmd.v (Cmd.info "characterize" ~doc) Term.(const run $ const ())

(* --- disasm --- *)

let disasm_cmd =
  let doc = "Assemble a program and print the listing." in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.s") in
  let run file =
    let program = Soc.Asm.assemble (read_file file) in
    List.iter print_endline
      (Soc.Asm.disassemble ~origin:program.Soc.Asm.origin program.Soc.Asm.words)
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const run $ file)

(* --- serve / client --- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the simulation service.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Loopback TCP port of the simulation service (0 = ephemeral).")

let serve_cmd =
  let doc = "Run the simulation-service daemon (DESIGN.md section 15)." in
  let domains =
    Arg.(
      value
      & opt int (Core.Parallel.default_domains ())
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains draining the job queue (default: CPU count).")
  in
  let queue_depth =
    Arg.(
      value
      & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bound on the job queue; a push beyond it is rejected with a \
             busy frame carrying retry_after_ms.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE.json"
          ~doc:
            "After the daemon drains, write its whole telemetry timeline \
             (worker lanes, request slices, queue-depth counter) as Chrome \
             trace-event JSON to $(docv).")
  in
  let run socket port domains queue_depth trace_out =
    (* No endpoint given: serve on a conventional local socket path. *)
    let unix_path, tcp_port =
      match (socket, port) with
      | None, None -> (Some "smartcard.sock", None)
      | s, p -> (s, p)
    in
    let server =
      Serve.Server.create ?unix_path ?tcp_port ~domains ~queue_depth
        ~handle_signals:true ()
    in
    Option.iter (Printf.printf "serving on unix socket %s\n%!") unix_path;
    (match Serve.Server.tcp_port server with
    | Some p -> Printf.printf "serving on tcp 127.0.0.1:%d\n%!" p
    | None -> ());
    Printf.printf "%d worker domain(s), queue depth %d; SIGINT drains\n%!"
      domains queue_depth;
    Serve.Server.serve server;
    print_endline "drained; all jobs finished";
    match trace_out with
    | None -> ()
    | Some path ->
      let telemetry = Serve.Server.telemetry server in
      Serve.Telemetry.write_chrome ~path telemetry;
      Printf.printf "chrome trace written to %s (%d spans, %d dropped)\n" path
        (Serve.Telemetry.spans_total telemetry)
        (Serve.Telemetry.spans_dropped telemetry)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ port_arg $ domains $ queue_depth $ trace_out)

let workload_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
           (Printf.sprintf
              "unknown workload %S (table3[:N]|mixed[:N]|characterization|trace:FILE)"
              s))
    in
    match String.split_on_char ':' s with
    | [ "table3" ] -> Ok (Serve.Protocol.Table3 64)
    | [ "table3"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Serve.Protocol.Table3 n)
      | None -> bad ())
    | [ "mixed" ] -> Ok (Serve.Protocol.Mixed_phase 400)
    | [ "mixed"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Serve.Protocol.Mixed_phase n)
      | None -> bad ())
    | [ "characterization" ] -> Ok Serve.Protocol.Characterization
    | "trace" :: rest when rest <> [] ->
      let path = String.concat ":" rest in
      Ok
        (Serve.Protocol.Inline
           (String.split_on_char '\n' (read_file path)
           |> List.filter (fun l -> String.trim l <> "")))
    | _ -> bad ()
  in
  let print ppf (w : Serve.Protocol.workload) =
    Format.pp_print_string ppf
      (match w with
      | Serve.Protocol.Table3 n -> Printf.sprintf "table3:%d" n
      | Serve.Protocol.Mixed_phase n -> Printf.sprintf "mixed:%d" n
      | Serve.Protocol.Characterization -> "characterization"
      | Serve.Protocol.Inline _ -> "trace:<inline>")
  in
  Arg.conv (parse, print)

(* Pretty rendering of response frames (the default; --raw keeps the
   faithful JSON-lines wire transcript).  Explore rows accumulate and
   print as one table when the stream terminates. *)

let render_result (r : Serve.Protocol.result_body) =
  let open Serve.Protocol in
  Printf.printf "level:       %s\n" (Core.Level.to_string r.level);
  Printf.printf "cycles:      %d\n" r.cycles;
  Printf.printf "bus txns:    %d (%d beats, %d errors)\n" r.txns r.beats
    r.errors;
  Printf.printf "bus energy:  %.1f pJ\n" r.bus_pj;
  Printf.printf "peripherals: %.1f pJ\n" r.component_pj;
  Printf.printf "wall time:   %.1f ms\n%!" (r.wall_seconds *. 1e3)

let render_rows rows =
  match List.rev rows with
  | [] -> ()
  | rows ->
    let cells (r : Serve.Protocol.row_body) =
      let open Serve.Protocol in
      [ r.applet; r.config;
        Core.Level.to_string r.row_level;
        string_of_int r.row_cycles;
        Printf.sprintf "%.1f" r.row_bus_pj;
        string_of_int r.transactions;
        (if r.correct then "ok" else "WRONG");
        (match r.switches with Some s -> string_of_int s | None -> "-") ]
    in
    print_endline
      (Core.Report.table
         ~header:
           [ "applet"; "config"; "level"; "cycles"; "bus pJ"; "txns";
             "check"; "switches" ]
         (List.map cells rows))

let render_stats (s : Serve.Protocol.stats_body) =
  let open Serve.Protocol in
  Printf.printf "queue:         %d/%d%s\n" s.queue_depth s.queue_capacity
    (if s.stats_draining then " (draining)" else "");
  Printf.printf "uptime:        %.1f s\n" s.uptime_s;
  Printf.printf
    "requests:      %d accepted, %d completed, %d failed, %d rejected\n"
    s.accepted s.completed s.failed s.rejected;
  Printf.printf "spans dropped: %d\n" s.spans_dropped;
  if s.workers <> [] then begin
    print_newline ();
    print_endline
      (Core.Report.table ~header:[ "worker"; "jobs" ]
         (List.map
            (fun (w : worker_stat) ->
              [ string_of_int w.worker; string_of_int w.jobs ])
            s.workers))
  end;
  print_newline ();
  print_endline s.rendered;
  flush stdout

let render_error (e : Serve.Protocol.error_body) =
  let open Serve.Protocol in
  Printf.eprintf "error [%s]: %s%s\n%!"
    (error_code_to_string e.code)
    e.message
    (match e.retry_after_ms with
    | Some ms -> Printf.sprintf " (retry after %d ms)" ms
    | None -> "")

let render_frame ~rows frame =
  let open Serve.Protocol in
  match frame with
  | Accepted depth -> Printf.printf "accepted (queue depth %d)\n%!" depth
  | Result r -> render_result r
  | Row (_, r) -> rows := r :: !rows
  | Point p ->
    Printf.printf "point %d: scale %g -> %.1f pJ (%d cycles, %d txns)\n%!"
      p.point_seq p.scale p.point_bus_pj p.point_cycles p.point_txns
  | Energy (seq, lines) ->
    Printf.printf "energy chunk %d (%d lines)\n%!" seq (List.length lines)
  | Stats_reply s -> render_stats s
  | Metrics_reply m -> print_endline m.metrics_rendered; flush stdout
  | Trace_chunk tc ->
    Printf.printf "trace chunk %d: %d events%s\n%!" tc.trace_seq
      (List.length tc.trace_events)
      (if tc.trace_missed = 0 then ""
       else Printf.sprintf " (%d spans missed)" tc.trace_missed)
  | Subscribed sb ->
    Printf.printf "subscribed: %s every %d ms\n%!"
      (String.concat "," (List.map stream_to_wire sb.sub_streams))
      sb.sub_interval_ms
  | Error e -> render_error e
  | Done d ->
    render_rows !rows;
    rows := [];
    Printf.printf "done: %d frames in %.2f ms (worker %d)\n%!" d.frames
      d.latency_ms d.done_worker

(* The watch loop behind [smartcard client watch]: subscribe, print
   stream frames as they arrive, and on Ctrl-C (or --count) unsubscribe
   so the connection ends aligned.  Trace chunks accumulate into one
   Chrome document when --trace-out is given. *)
let client_watch c ~raw ~interval_ms ~streams ~count ~trace_out =
  let streams =
    if trace_out <> None && not (List.mem `Trace streams) then
      streams @ [ `Trace ]
    else streams
  in
  Sys.catch_break true;
  let events = ref [] and n_events = ref 0 and missed = ref 0 in
  let seen = ref 0 in
  let status = ref 0 in
  (match Serve.Client.subscribe ~interval_ms c ~streams with
  | Error e ->
    prerr_endline e;
    status := 1
  | Ok _id ->
    (try
       while match count with None -> true | Some n -> !seen < n do
         match Serve.Client.read_frame c with
         | Error e ->
           prerr_endline e;
           status := 1;
           raise Exit
         | Ok doc -> (
           if raw then print_endline (Obs.Json.to_string doc);
           match Serve.Protocol.frame_of_json doc with
           | Ok (_, Serve.Protocol.Metrics_reply m) ->
             incr seen;
             if not raw then
               Printf.printf "--- metrics snapshot %d ---\n%s\n%!"
                 m.Serve.Protocol.metrics_seq
                 m.Serve.Protocol.metrics_rendered
           | Ok (_, Serve.Protocol.Trace_chunk tc) ->
             incr seen;
             let n = List.length tc.Serve.Protocol.trace_events in
             events := List.rev_append tc.Serve.Protocol.trace_events !events;
             n_events := !n_events + n;
             missed := !missed + tc.Serve.Protocol.trace_missed;
             if not raw then
               Printf.printf "trace chunk %d: %d events%s\n%!"
                 tc.Serve.Protocol.trace_seq n
                 (if tc.Serve.Protocol.trace_missed = 0 then ""
                  else
                    Printf.sprintf " (%d spans missed)"
                      tc.Serve.Protocol.trace_missed)
           | Ok (_, Serve.Protocol.Energy (seq, lines)) ->
             incr seen;
             if not raw then
               Printf.printf "energy chunk %d (%d lines)\n%!" seq
                 (List.length lines)
           | Ok _ -> ()
           | Error e -> prerr_endline e)
       done
     with Sys.Break | Exit -> ());
    (* Best effort: a daemon that already went away is not an error. *)
    (match
       try Serve.Client.unsubscribe c
       with Sys.Break | Unix.Unix_error _ -> Ok ()
     with
    | Ok () | Error _ -> ()));
  (match trace_out with
  | None -> ()
  | Some path ->
    let doc =
      Obs.Json.Obj [ ("traceEvents", Obs.Json.List (List.rev !events)) ]
    in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Obs.Json.to_string doc);
        output_char oc '\n');
    Printf.printf "chrome trace written to %s (%d events%s)\n" path !n_events
      (if !missed = 0 then ""
       else Printf.sprintf ", %d spans missed" !missed));
  !status

let client_cmd =
  let doc =
    "Send one request to a running daemon and print the response, or watch \
     its live telemetry streams."
  in
  let kind =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("run", `Run); ("explore", `Explore); ("replay", `Replay);
                  ("stats", `Stats); ("metrics", `Metrics);
                  ("watch", `Watch); ("shutdown", `Shutdown) ]))
          None
      & info [] ~docv:"REQUEST"
          ~doc:"run|explore|replay|stats|metrics|watch|shutdown")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with --port).")
  in
  let workload =
    Arg.(
      value
      & opt workload_conv (Serve.Protocol.Table3 64)
      & info [ "workload" ] ~docv:"SPEC"
          ~doc:
            "Workload of a run/replay request: table3[:N], mixed[:N], \
             characterization, or trace:FILE (ships the recorded trace \
             inline).")
  in
  let serial =
    Arg.(value & flag & info [ "serial" ] ~doc:"Wait for each transaction.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Stream the per-cycle energy profile (run requests).")
  in
  let scales =
    Arg.(
      value
      & opt (list float) [ 1.0 ]
      & info [ "scales" ] ~docv:"S1,S2,.."
          ~doc:"Characterization scale factors of a replay request.")
  in
  let applets =
    Arg.(
      value
      & opt (list string) []
      & info [ "applets" ] ~docv:"NAMES"
          ~doc:"Applet names of an explore request (default: all).")
  in
  let configs =
    Arg.(
      value
      & opt (list string) []
      & info [ "configs" ] ~docv:"NAMES"
          ~doc:"Config names of an explore request (default: standard grid).")
  in
  let adaptive =
    Arg.(
      value & flag
      & info [ "adaptive" ]
          ~doc:"Explore through the live adaptive engine (--level ignored).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:
            "Print every response frame as one JSON line (the faithful wire \
             transcript) instead of rendered tables.")
  in
  let interval =
    Arg.(
      value & opt int 500
      & info [ "interval" ] ~docv:"MS"
          ~doc:"Snapshot cadence of a watch subscription (10..60000 ms).")
  in
  let streams =
    Arg.(
      value
      & opt
          (list
             (enum
                [ ("metrics", `Metrics); ("trace", `Trace);
                  ("energy", `Energy) ]))
          [ `Metrics ]
      & info [ "streams" ] ~docv:"S1,S2,.."
          ~doc:"Streams of a watch subscription: metrics, trace, energy.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:"Stop watching after $(docv) stream frames (default: Ctrl-C).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE.json"
          ~doc:
            "Accumulate watched trace chunks and write them as one Chrome \
             trace-event document on exit (implies the trace stream).")
  in
  let run kind socket host port level workload serial profile compiled scales
      applets configs adaptive raw interval_ms streams count trace_out =
    let endpoint =
      match (socket, port) with
      | Some path, _ -> `Unix path
      | None, Some port -> `Tcp (host, port)
      | None, None -> `Unix "smartcard.sock"
    in
    let c = Serve.Client.connect endpoint in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        match kind with
        | `Watch ->
          (* Sys_error is a closed stdout (e.g. | head): not our error. *)
          exit
            (try client_watch c ~raw ~interval_ms ~streams ~count ~trace_out
             with Sys_error _ -> 0)
        | (`Run | `Explore | `Replay | `Stats | `Metrics | `Shutdown) as kind
          ->
          let mode = if serial then `Serial else `Pipelined in
          let request =
            match kind with
            | `Stats -> Serve.Protocol.Stats
            | `Metrics -> Serve.Protocol.Metrics
            | `Shutdown -> Serve.Protocol.Shutdown
            | `Run ->
              Serve.Protocol.Run
                { Serve.Protocol.workload; level; mode; estimate = true;
                  profile; compiled }
            | `Replay ->
              Serve.Protocol.Replay
                { Serve.Protocol.workload; level; mode; scales; fabric = None }
            | `Explore ->
              Serve.Protocol.Explore
                { Serve.Protocol.applets; configs; level; adaptive }
          in
          let _id = Serve.Client.send c request in
          let rows = ref [] in
          let rec loop () =
            match Serve.Client.read_frame c with
            | Error e ->
              prerr_endline e;
              1
            | Ok doc -> (
              if raw then print_endline (Obs.Json.to_string doc);
              match Serve.Protocol.frame_of_json doc with
              | Ok (_, frame) -> (
                if not raw then render_frame ~rows frame;
                match frame with
                | Serve.Protocol.Done _ -> 0
                | Serve.Protocol.Error _ -> 1
                | _ -> loop ())
              | Error e ->
                prerr_endline e;
                1)
          in
          (* Sys_error here is a closed stdout (e.g. | head): not our
             error. *)
          exit (try loop () with Sys_error _ -> 0))
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ kind $ socket_arg $ host $ port_arg $ level_arg $ workload
      $ serial $ profile
      $ compiled_flag ~default:true
      $ scales $ applets $ configs $ adaptive $ raw $ interval $ streams
      $ count $ trace_out)

let () =
  let doc =
    "Hierarchical bus models with energy estimation for power-aware smart cards"
  in
  let info = Cmd.info "smartcard" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tables_cmd; explore_cmd; run_cmd; fabric_cmd; trace_cmd;
            characterize_cmd; ablate_cmd; coding_cmd; cache_cmd; disasm_cmd;
            serve_cmd; client_cmd ]))
