let () =
  let program = Soc.Asm.assemble (Core.Test_programs.timer_interrupts ~ticks:3) in
  let run = Core.Runner.run_program program in
  Printf.printf "fault=%s instrs=%d cycles=%d\n"
    (match run.Core.Runner.fault with None -> "none" | Some _ -> "FAULT")
    run.Core.Runner.instructions run.Core.Runner.result.Core.Runner.cycles;
  let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
  Printf.printf "ticks=%d\n" (Soc.Memory.peek32 ram ~addr:Soc.Platform.Map.ram_base)
