(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (section 4), then measures the simulation kernels
   with Bechamel (one benchmark group per table/figure).

   Usage:
     dune exec bench/main.exe               -- everything
     dune exec bench/main.exe -- tables      -- only the paper tables
     dune exec bench/main.exe -- micro       -- only the Bechamel runs
     dune exec bench/main.exe -- micro --json -- Bechamel estimates as JSON
     dune exec bench/main.exe -- adaptive    -- adaptive mixed-level comparison
     dune exec bench/main.exe -- serve-soak  -- sustained multi-client daemon soak
     dune exec bench/main.exe -- ablations   -- only the sensitivity studies
     dune exec bench/main.exe -- smoke       -- reduced-size table pipeline
                                                (wired into dune runtest) *)

open Bechamel
open Toolkit

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Paper tables and figures (measured, not sampled).                   *)
(* ------------------------------------------------------------------ *)

(* [smoke] keeps every stage of the table pipeline but shrinks the
   transaction counts and the exploration grid so `dune runtest` can
   afford to exercise it on every run. *)
let print_tables ?(smoke = false) () =
  section "Section 4.1 - Verification and Evaluation";
  let rows = Core.Experiments.run_accuracy () in
  print_endline (Core.Experiments.render_table1 rows);
  print_newline ();
  print_endline (Core.Experiments.render_table2 rows);
  section "Section 4.2 - Simulation Performance";
  let perf =
    if smoke then Core.Experiments.run_performance ~txns:500 ~repetitions:1 ()
    else Core.Experiments.run_performance ()
  in
  print_endline (Core.Experiments.render_table3 perf);
  section "Figure 6 - Energy sampling semantics of the layer-2 interface";
  print_endline (Core.Experiments.render_figure6 (Core.Experiments.run_figure6 ()));
  section "Section 4.3 / Figure 7 - HW/SW interface exploration (JCVM)";
  let rows =
    if smoke then Core.Exploration.run ~applets:[ Jcvm.Applets.fib ] ()
    else Core.Exploration.run ()
  in
  print_endline (Core.Exploration.render rows);
  section "Adaptive exploration sweep (DESIGN.md section 12)";
  let c =
    if smoke then
      Core.Experiments.run_exploration_comparison
        ~applets:[ Jcvm.Applets.fib ] ()
    else Core.Experiments.run_exploration_comparison ()
  in
  print_endline (Core.Experiments.render_exploration_comparison c)

(* The adaptive mixed-level comparison: accuracy and T/s of the spliced
   run against the pure levels, plus the ratio the trajectory tracks. *)
let print_adaptive ?(smoke = false) () =
  section "Adaptive mixed-level simulation (hier engine)";
  let s =
    (* 2048 transactions cover a sensitive phase, so the smoke run
       actually switches levels. *)
    if smoke then Core.Experiments.run_adaptive_comparison ~txns:2_048 ~repetitions:1 ()
    else Core.Experiments.run_adaptive_comparison ()
  in
  print_endline (Core.Experiments.render_adaptive s);
  (* The adaptive run is the last row by construction. *)
  match List.rev s.Core.Experiments.rows with
  | adaptive :: _ ->
    Printf.printf "adaptive vs pure-L1 T/s ratio: %.2f\n"
      adaptive.Core.Experiments.speedup_vs_l1
  | [] -> ()

let print_ablations () =
  section "Ablations - sensitivity of the reproduction to modelling choices";
  print_endline (Core.Ablations.run_all ())

let print_extensions () =
  section "Extensions - cache/bus and bus-coding explorations";
  let sort = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:10) in
  print_endline
    (Core.Cache_study.render (Core.Cache_study.run ~name:"bubble-sort" sort));
  print_newline ();
  let exercise = Soc.Asm.assemble Core.Test_programs.bus_exercise in
  print_endline
    (Core.Coding_study.render
       (Core.Coding_study.run_program ~name:"bus-exercise" exercise))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: cost of one workload unit per model.     *)
(* ------------------------------------------------------------------ *)

(* Tables 1 and 2 are produced by running the verification sequences
   through each abstraction level. *)
let bench_accuracy =
  let run level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial Core.Verify_seqs.combined)
  in
  Test.make_grouped ~name:"table1+2/accuracy-stimulus"
    [
      Test.make ~name:"gate-level" (Staged.stage (run Core.Level.Rtl));
      Test.make ~name:"tl-layer-1" (Staged.stage (run Core.Level.L1));
      Test.make ~name:"tl-layer-2" (Staged.stage (run Core.Level.L2));
    ]

(* Table 3: 256 transactions of the de-Bruijn mix per run. *)
let bench_performance =
  let trace = Core.Workloads.table3_trace ~n:256 in
  let run level estimate () =
    ignore (Core.Runner.run_trace ~level ~estimate ~mode:`Serial trace)
  in
  Test.make_grouped ~name:"table3/256-transactions"
    [
      Test.make ~name:"l1-with-estimation" (Staged.stage (run Core.Level.L1 true));
      Test.make ~name:"l1-without-estimation"
        (Staged.stage (run Core.Level.L1 false));
      Test.make ~name:"l2-with-estimation" (Staged.stage (run Core.Level.L2 true));
      Test.make ~name:"l2-without-estimation"
        (Staged.stage (run Core.Level.L2 false));
      Test.make ~name:"gate-level" (Staged.stage (run Core.Level.Rtl true));
    ]

(* Adaptive engine: one mixed-phase workload through the pure levels and
   the spliced run, so the trajectory records the pure-vs-adaptive T/s
   ratio (adaptive should sit between pure-l1 and pure-l2). *)
let bench_adaptive =
  let trace = Core.Workloads.mixed_phase_trace ~n:512 () in
  let pure level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial trace)
  in
  let adaptive () =
    ignore
      (Core.Runner.run_adaptive ~mode:`Serial
         ~policy:Core.Experiments.adaptive_policy trace)
  in
  Test.make_grouped ~name:"adaptive/mixed-512"
    [
      Test.make ~name:"pure-l1" (Staged.stage (pure Core.Level.L1));
      Test.make ~name:"pure-l2" (Staged.stage (pure Core.Level.L2));
      Test.make ~name:"adaptive" (Staged.stage adaptive);
    ]

(* Adaptive exploration: one applet's full configuration grid, swept
   pure and adaptively — the trajectory tracks the sweep-level speedup
   (the DESIGN.md section 12 acceptance ratio, adaptive vs pure-l1). *)
let bench_adaptive_explore =
  let sweep level () =
    ignore
      (Core.Exploration.run ~level ~applets:[ Jcvm.Applets.fib ] ~domains:1 ())
  in
  let adaptive =
    let policy = Hier.Policy.for_exploration () in
    fun () ->
      ignore
        (Core.Exploration.run ~policy ~applets:[ Jcvm.Applets.fib ] ~domains:1
           ())
  in
  Test.make_grouped ~name:"adaptive-explore/fib-grid"
    [
      Test.make ~name:"pure-l1" (Staged.stage (sweep Core.Level.L1));
      Test.make ~name:"pure-l2" (Staged.stage (sweep Core.Level.L2));
      Test.make ~name:"adaptive" (Staged.stage adaptive);
    ]

(* Figure 6: cycle-accurate profiling cost. *)
let bench_figure6 =
  Test.make_grouped ~name:"figure6/profiled-run"
    [
      Test.make ~name:"l1-profiled"
        (Staged.stage (fun () -> ignore (Core.Experiments.run_figure6 ())));
    ]

(* Figure 7 / section 4.3: one applet on representative configurations. *)
let bench_exploration =
  let run name () =
    let config =
      List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
    in
    ignore (Core.Exploration.run_one ~config Jcvm.Applets.fib)
  in
  Test.make_grouped ~name:"figure7/fib-applet"
    [
      Test.make ~name:"w16-dedicated" (Staged.stage (run "w16-dedicated"));
      Test.make ~name:"w32-packed" (Staged.stage (run "w32-packed"));
      Test.make ~name:"w16-cmd+data" (Staged.stage (run "w16-cmd+data"));
    ]

(* Instrumentation overhead: the same 256-transaction replay with the
   sink disabled (the production configuration, allocation-free on the
   per-cycle paths) and enabled (one shared sink, reset per run so the
   ring never saturates differently between iterations). *)
let bench_obs_overhead =
  let trace = Core.Workloads.table3_trace ~n:256 in
  let plain level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial trace)
  in
  let sink = Obs.Sink.create () in
  let instrumented level () =
    Obs.Sink.reset sink;
    ignore (Core.Runner.run_trace ~level ~mode:`Serial ~sink trace)
  in
  Test.make_grouped ~name:"overhead/obs"
    [
      Test.make ~name:"rtl-no-sink" (Staged.stage (plain Core.Level.Rtl));
      Test.make ~name:"rtl-with-sink"
        (Staged.stage (instrumented Core.Level.Rtl));
      Test.make ~name:"l1-no-sink" (Staged.stage (plain Core.Level.L1));
      Test.make ~name:"l1-with-sink"
        (Staged.stage (instrumented Core.Level.L1));
    ]

(* Session pooling: the same replay with a session rebuilt from scratch
   every iteration versus drawn from a persistent pool and reset in
   place, plus the full exploration grid swept fresh-per-cell versus on
   the sweep's internal pool (one reset session per configuration shape,
   reused across applets).  The fresh/pooled gap is the per-run setup
   cost the pool eliminates; the grid pair is the wall-clock acceptance
   ratio tracked in EXPERIMENTS.md. *)
let bench_pool =
  let trace = Core.Workloads.table3_trace ~n:64 in
  let fresh level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial trace)
  in
  let pool = Core.Pool.create () in
  let pooled level () =
    ignore (Core.Runner.run_trace ~level ~mode:`Serial ~pool trace)
  in
  (* [compiled:false] keeps this pair measuring session reuse alone —
     the compiled-plan path has its own group below. *)
  let grid use_pool () =
    ignore (Core.Exploration.run ~domains:1 ~pool:use_pool ~compiled:false ())
  in
  Test.make_grouped ~name:"pool/sessions"
    [
      Test.make ~name:"l1-64txn-fresh-build" (Staged.stage (fresh Core.Level.L1));
      Test.make ~name:"l1-64txn-pooled-reset" (Staged.stage (pooled Core.Level.L1));
      Test.make ~name:"rtl-64txn-fresh-build" (Staged.stage (fresh Core.Level.Rtl));
      Test.make ~name:"rtl-64txn-pooled-reset" (Staged.stage (pooled Core.Level.Rtl));
      Test.make ~name:"explore-grid-fresh" (Staged.stage (grid false));
      Test.make ~name:"explore-grid-pooled" (Staged.stage (grid true));
    ]

(* Trace compilation (DESIGN.md section 14): the 64-transaction replay
   interpreted, pooled-interpreted, and as a compiled-plan evaluation —
   plus the same evaluation for 35 characterization points at once, and
   the full 35-cell exploration grid interpreted versus compiled-warm.
   The single-point compiled replay is the >=5x acceptance target
   against the pooled-interpreted baseline; the grid pair is the >=2.5x
   target (EXPERIMENTS.md). *)
let bench_compiled =
  let trace = Core.Workloads.table3_trace ~n:64 in
  let pool = Core.Pool.create () in
  let interpreted () =
    ignore (Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial trace)
  in
  let pooled () =
    ignore
      (Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial ~pool trace)
  in
  let plan =
    Core.Runner.compile_trace ~level:Core.Level.L1 ~mode:`Serial trace
  in
  let compiled () = ignore (Core.Runner.replay_compiled plan) in
  (* A 35-lane batch, one lane per exploration grid cell: scaled tables
     standing in for the capacitance/voltage variants of a sweep. *)
  let points =
    List.init 35 (fun i ->
        {
          Compile.Eval.table =
            Power.Characterization.scale Power.Characterization.default
              (0.5 +. (0.05 *. float_of_int i));
          l2_params = None;
        })
  in
  let compiled_35pt () =
    ignore (Core.Runner.replay_multi ~points plan)
  in
  let grid compiled () =
    ignore (Core.Exploration.run ~domains:1 ~compiled ())
  in
  Test.make_grouped ~name:"compiled/replay"
    [
      Test.make ~name:"l1-64txn-interpreted" (Staged.stage interpreted);
      Test.make ~name:"l1-64txn-pooled" (Staged.stage pooled);
      Test.make ~name:"l1-64txn-compiled" (Staged.stage compiled);
      Test.make ~name:"l1-64txn-compiled-35pt" (Staged.stage compiled_35pt);
      Test.make ~name:"explore-grid-interpreted" (Staged.stage (grid false));
      Test.make ~name:"explore-grid-compiled" (Staged.stage (grid true));
    ]

(* --- the simulation service measured over its own wire (§15) --- *)

let serve_run_request c =
  match
    Serve.Client.request c
      (Serve.Protocol.Run
         {
           Serve.Protocol.workload = Serve.Protocol.Table3 16;
           level = Core.Level.L1;
           mode = `Serial;
           estimate = true;
           profile = false;
           compiled = true;
         })
  with
  | Ok _ -> ()
  | Error e -> failwith ("serve bench request failed: " ^ e)

(* One daemon for the whole benchmark process, started on first use and
   deliberately leaked: it is torn down with the process. *)
let serve_env =
  lazy
    (let path = Filename.temp_file "serve-bench" ".sock" in
     Unix.unlink path;
     let server =
       Serve.Server.create ~unix_path:path ~domains:2 ~queue_depth:64 ()
     in
     ignore (Thread.create Serve.Server.serve server);
     path)

(* Multi-master fabric: the same stimulus pool replayed by 1, 2 or 3
   arbitrated masters at every timed level, so the trajectory records
   what contention costs per level and how the fabric overhead scales
   with the master count. *)
let bench_fabric =
  let masters count =
    match count with
    | 1 -> [ (Core.Contention.Cpu, Core.Workloads.table3_trace ~n:128) ]
    | n ->
      List.filteri
        (fun i _ -> i < n)
        (Core.Contention.default_masters ~n:128 Core.Contention.Single)
  in
  let run level count () =
    ignore (Core.Contention.run ~level ~mode:`Serial (masters count))
  in
  let tests =
    List.concat_map
      (fun (tag, level) ->
        List.map
          (fun count ->
            Test.make
              ~name:(Printf.sprintf "%s-%dm" tag count)
              (Staged.stage (run level count)))
          [ 1; 2; 3 ])
      [
        ("gate-level", Core.Level.Rtl);
        ("tl-layer-1", Core.Level.L1);
        ("tl-layer-2", Core.Level.L2);
      ]
  in
  Test.make_grouped ~name:"fabric/contention" tests

(* Compiled fabric replay (DESIGN.md section 18): the three-master
   bridged contention cell interpreted versus evaluated off a
   precompiled fabric plan, plus a 35-point sweep folded over the one
   decode — the multi-master analogue of [compiled/replay].  The
   single-cell pair is the >=4x acceptance target, the grid pair in the
   smoke is the >=5x target (EXPERIMENTS.md). *)
let bench_compiled_fabric =
  let masters =
    Core.Contention.default_masters ~n:128 Core.Contention.Bridged
  in
  let kinds = List.map fst masters in
  let points =
    List.init 35 (fun i ->
        {
          Compile.Eval.table =
            Power.Characterization.scale Power.Characterization.default
              (0.5 +. (0.05 *. float_of_int i));
          l2_params = None;
        })
  in
  let tests =
    List.concat_map
      (fun (tag, level) ->
        let plan =
          Core.Contention.compile ~level ~mode:`Serial
            ~topology:Core.Contention.Bridged masters
        in
        let interpreted () =
          ignore
            (Core.Contention.run ~level ~mode:`Serial
               ~topology:Core.Contention.Bridged masters)
        in
        let compiled () =
          ignore
            (Core.Contention.replay_plan ~level ~policy:Ec.Arbiter.Round_robin
               ~topology:Core.Contention.Bridged ~kinds plan)
        in
        let compiled_35pt () =
          ignore (Compile.Eval.eval_fabric_multi plan ~points)
        in
        [
          Test.make ~name:(tag ^ "-3m-interpreted") (Staged.stage interpreted);
          Test.make ~name:(tag ^ "-3m-compiled") (Staged.stage compiled);
          Test.make
            ~name:(tag ^ "-3m-compiled-35pt")
            (Staged.stage compiled_35pt);
        ])
      [ ("tl-layer-1", Core.Level.L1); ("tl-layer-2", Core.Level.L2) ]
  in
  Test.make_grouped ~name:"compiled-fabric/replay" tests

let bench_serve =
  let conn = lazy (Serve.Client.connect (`Unix (Lazy.force serve_env))) in
  let roundtrip () = serve_run_request (Lazy.force conn) in
  let stats () =
    match Serve.Client.request (Lazy.force conn) Serve.Protocol.Stats with
    | Ok _ -> ()
    | Error e -> failwith ("serve stats failed: " ^ e)
  in
  (* A live metrics subscription on its own connection, drained by a
     background thread — the with-subscriber measurement of the same
     round-trip, bounding the telemetry plane's overhead (<= 5%,
     EXPERIMENTS.md).  Metrics only: snapshots are fixed-size per tick,
     which is the plane's steady-state cost; a trace subscription does
     work proportional to the request rate by design (every span ships),
     and at bench rates on a shared core that measures the trace codec,
     not the plane.  Leaked like the daemon itself. *)
  let subscriber =
    lazy
      (let c = Serve.Client.connect (`Unix (Lazy.force serve_env)) in
       match
         Serve.Client.subscribe ~interval_ms:100 c ~streams:[ `Metrics ]
       with
       | Error e -> failwith ("serve bench subscribe failed: " ^ e)
       | Ok _ ->
         ignore
           (Thread.create
              (fun () ->
                let rec drain () =
                  match Serve.Client.read_frame c with
                  | Ok _ -> drain ()
                  | Error _ -> ()
                in
                drain ())
              ()))
  in
  let roundtrip_subscribed () =
    Lazy.force subscriber;
    serve_run_request (Lazy.force conn)
  in
  Test.make_grouped ~name:"serve/requests"
    [
      Test.make ~name:"run-16txn-roundtrip" (Staged.stage roundtrip);
      Test.make ~name:"run-16txn-roundtrip-subscribed"
        (Staged.stage roundtrip_subscribed);
      Test.make ~name:"stats-roundtrip" (Staged.stage stats);
    ]

(* Client-observed latency distribution at 1/4/8 concurrent clients over
   the Unix socket — percentiles are out of Bechamel's OLS model, so
   this section measures them directly. *)
let serve_latency_points () =
  let path = Lazy.force serve_env in
  let percentile sorted p =
    let n = Array.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  in
  List.map
    (fun clients ->
      let per_client = 40 in
      let lats = Array.make (clients * per_client) 0.0 in
      let worker i =
        let c = Serve.Client.connect (`Unix path) in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            for j = 0 to per_client - 1 do
              let t0 = Unix.gettimeofday () in
              serve_run_request c;
              lats.((i * per_client) + j) <- Unix.gettimeofday () -. t0
            done)
      in
      let t0 = Unix.gettimeofday () in
      let threads = List.init clients (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      Array.sort compare lats;
      ( clients,
        percentile lats 50.0 *. 1e6,
        percentile lats 99.0 *. 1e6,
        float_of_int (clients * per_client) /. wall ))
    [ 1; 4; 8 ]

let print_serve_latency () =
  section "Serve wire latency (16-txn compiled run over the Unix socket)";
  List.iter
    (fun (clients, p50_us, p99_us, rps) ->
      Printf.printf
        "  %d client(s): p50 %8.1f us   p99 %8.1f us   %8.0f req/s\n" clients
        p50_us p99_us rps)
    (serve_latency_points ())

let serve_latency_json () =
  let entries =
    List.concat_map
      (fun (clients, p50_us, p99_us, rps) ->
        [
          Printf.sprintf "\"p50_us-%dclient\": %.1f" clients p50_us;
          Printf.sprintf "\"p99_us-%dclient\": %.1f" clients p99_us;
          Printf.sprintf "\"throughput_rps-%dclient\": %.0f" clients rps;
        ])
      (serve_latency_points ())
  in
  Printf.printf "{\"group\": \"serve/latency\", \"unit\": \"mixed\", \"estimates\": {%s}}\n"
    (String.concat ", " entries)

(* --- sustained soak of the daemon (§16) --- *)

(* N clients hammer one short-lived daemon with 16-txn compiled runs for
   a wall-clock window; the harness reports the latency distribution,
   throughput, busy-rejection count and the per-client fairness spread
   the round-robin queue is supposed to bound, then reconciles the
   client-observed completion count against the daemon's own telemetry
   snapshot — the two ledgers must agree exactly. *)

type soak_result = {
  soak_clients : int;
  soak_wall_s : float;
  soak_completed : int;
  soak_busy : int;
  soak_p50_us : float;
  soak_p99_us : float;
  soak_max_us : float;
  soak_rps : float;
  soak_spread : float;  (* max/min per-client completed count *)
  soak_reconciled : bool;
}

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let run_serve_soak ~clients ~duration () =
  let path = Filename.temp_file "serve-soak" ".sock" in
  Unix.unlink path;
  let server =
    Serve.Server.create ~unix_path:path ~domains:2 ~queue_depth:64 ()
  in
  let thread = Thread.create Serve.Server.serve server in
  let request =
    Serve.Protocol.Run
      {
        Serve.Protocol.workload = Serve.Protocol.Table3 16;
        level = Core.Level.L1;
        mode = `Serial;
        estimate = true;
        profile = false;
        compiled = true;
      }
  in
  let deadline = Unix.gettimeofday () +. duration in
  let completed = Array.make clients 0 in
  let busy = Array.make clients 0 in
  let lats = Array.make clients [] in
  let worker i =
    let c = Serve.Client.connect (`Unix path) in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        while Unix.gettimeofday () < deadline do
          let t0 = Unix.gettimeofday () in
          match Serve.Client.request c request with
          | Error e -> failwith ("serve soak request failed: " ^ e)
          | Ok frames ->
            let is_busy =
              List.exists
                (function
                  | Serve.Protocol.Error
                      { Serve.Protocol.code = Serve.Protocol.Busy; _ } ->
                    true
                  | _ -> false)
                frames
            in
            if is_busy then begin
              busy.(i) <- busy.(i) + 1;
              Thread.delay 0.002
            end
            else begin
              completed.(i) <- completed.(i) + 1;
              lats.(i) <- (Unix.gettimeofday () -. t0) :: lats.(i)
            end
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  (* One last connection reads the daemon's own ledger before the drain:
     its run-kind completed count must equal what the clients counted. *)
  let daemon_run_completed =
    let c = Serve.Client.connect (`Unix path) in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close c)
      (fun () ->
        match Serve.Client.request c Serve.Protocol.Metrics with
        | Error e -> failwith ("serve soak metrics failed: " ^ e)
        | Ok frames -> (
          match
            List.find_map
              (function
                | Serve.Protocol.Metrics_reply m -> Some m
                | _ -> None)
              frames
          with
          | None -> failwith "serve soak: no metrics frame"
          | Some m -> (
            match Obs.Json.member "requests" m.Serve.Protocol.snapshot with
            | None -> 0
            | Some reqs -> (
              match Obs.Json.member "run" reqs with
              | None -> 0
              | Some kind ->
                Option.value ~default:0
                  (Option.bind
                     (Obs.Json.member "completed" kind)
                     Obs.Json.int_opt)))))
  in
  Serve.Server.drain server;
  Thread.join thread;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let all =
    Array.concat (List.map Array.of_list (Array.to_list lats))
    |> Array.map (fun s -> s *. 1e6)
  in
  Array.sort compare all;
  let total_completed = Array.fold_left ( + ) 0 completed in
  let total_busy = Array.fold_left ( + ) 0 busy in
  let spread =
    let mn = Array.fold_left min max_int completed in
    let mx = Array.fold_left max 0 completed in
    if mn <= 0 then infinity else float_of_int mx /. float_of_int mn
  in
  {
    soak_clients = clients;
    soak_wall_s = wall;
    soak_completed = total_completed;
    soak_busy = total_busy;
    soak_p50_us =
      (if Array.length all = 0 then nan else percentile_of_sorted all 50.0);
    soak_p99_us =
      (if Array.length all = 0 then nan else percentile_of_sorted all 99.0);
    soak_max_us =
      (if Array.length all = 0 then nan else all.(Array.length all - 1));
    soak_rps = float_of_int total_completed /. wall;
    soak_spread = spread;
    soak_reconciled = daemon_run_completed = total_completed;
  }

let print_serve_soak ?(clients = 8) ?(duration = 10.0) () =
  section
    (Printf.sprintf
       "Serve soak (%d clients, %.0f s of 16-txn compiled runs over the \
        Unix socket)"
       clients duration);
  let s = run_serve_soak ~clients ~duration () in
  Printf.printf "  %d requests in %.1f s (%.0f req/s), %d busy rejections\n"
    s.soak_completed s.soak_wall_s s.soak_rps s.soak_busy;
  Printf.printf "  latency: p50 %.1f us   p99 %.1f us   max %.1f us\n"
    s.soak_p50_us s.soak_p99_us s.soak_max_us;
  Printf.printf "  per-client completed spread (max/min): %.2f\n"
    s.soak_spread;
  Printf.printf "  daemon telemetry reconciles with client counts: %s\n"
    (if s.soak_reconciled then "yes" else "NO");
  if not s.soak_reconciled then
    failwith "serve soak: telemetry diverged from client-observed counts"

let serve_soak_json ?(clients = 8) ?(duration = 10.0) () =
  let s = run_serve_soak ~clients ~duration () in
  Printf.printf
    "{\"group\": \"serve/soak\", \"unit\": \"mixed\", \"estimates\": \
     {\"clients\": %d, \"completed\": %d, \"busy\": %d, \"busy_rate\": \
     %.4f, \"p50_us\": %.1f, \"p99_us\": %.1f, \"max_us\": %.1f, \
     \"throughput_rps\": %.0f, \"client_spread\": %.2f, \"reconciled\": \
     %d}}\n"
    s.soak_clients s.soak_completed s.soak_busy
    (float_of_int s.soak_busy
    /. float_of_int (max 1 (s.soak_completed + s.soak_busy)))
    s.soak_p50_us s.soak_p99_us s.soak_max_us s.soak_rps s.soak_spread
    (if s.soak_reconciled then 1 else 0)

(* Reduced end-to-end pass over the observability layer for the smoke
   alias: run instrumented, export Chrome JSON, parse it back. *)
let print_obs_smoke () =
  section "Observability smoke (instrumented run -> Chrome JSON -> parse)";
  let trace = Core.Workloads.table3_trace ~n:64 in
  let sink = Obs.Sink.create () in
  let r = Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial ~sink trace in
  let json = Obs.Chrome.to_string sink in
  (match Obs.Json.of_string json with
  | Ok _ ->
    Printf.printf
      "instrumented l1 run: %d txns, %d events, %d dropped; chrome export \
       %d bytes, parses back OK\n"
      r.Core.Runner.txns (Obs.Sink.length sink) (Obs.Sink.dropped sink)
      (String.length json)
  | Error e -> Printf.printf "chrome export does NOT parse: %s\n" e);
  print_endline (Core.Report.metrics (Obs.Sink.metrics sink))

(* Session-pool smoke: one reduced exploration grid swept fresh and
   pooled, checked row-for-row identical, with the wall-clock ratio
   printed so a pooling regression is visible in every runtest log. *)
let print_pool_smoke () =
  section "Session-pool smoke (pooled sweep = fresh sweep)";
  let applets = [ Jcvm.Applets.fib; Jcvm.Applets.gcd ] in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let fresh, fresh_s =
    timed (fun () -> Core.Exploration.run ~applets ~domains:1 ~pool:false ())
  in
  let pooled, pooled_s =
    timed (fun () -> Core.Exploration.run ~applets ~domains:1 ~pool:true ())
  in
  Printf.printf
    "%d grid cells: fresh %.3f s, pooled %.3f s (%.2fx); rows %s\n"
    (List.length fresh) fresh_s pooled_s
    (fresh_s /. Float.max 1e-9 pooled_s)
    (if fresh = pooled then "bit-identical" else "DIFFER");
  if fresh <> pooled then failwith "pooled sweep diverged from fresh sweep"

(* Compiled-replay smoke: one trace per level replayed interpreted and
   off a compiled plan, checked bit-identical with the wall-clock ratio
   printed, so a compilation regression is visible in every runtest
   log. *)
let print_compiled_smoke () =
  section "Compiled-replay smoke (plan evaluation = interpretation)";
  let trace = Core.Workloads.table3_trace ~n:64 in
  let strip (r : Core.Runner.result) =
    ( r.Core.Runner.cycles, r.Core.Runner.txns, r.Core.Runner.beats,
      r.Core.Runner.errors, r.Core.Runner.bus_pj, r.Core.Runner.component_pj,
      r.Core.Runner.transitions )
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun level ->
      let interp, interp_s =
        timed (fun () -> Core.Runner.run_trace ~level ~mode:`Serial trace)
      in
      let plan = Core.Runner.compile_trace ~level ~mode:`Serial trace in
      let compiled, compiled_s =
        timed (fun () -> Core.Runner.replay_compiled plan)
      in
      Printf.printf
        "%s 64-txn replay: interpreted %.1f us, compiled eval %.1f us \
         (%.0fx); results %s\n"
        (Core.Level.to_string level) (interp_s *. 1e6) (compiled_s *. 1e6)
        (interp_s /. Float.max 1e-9 compiled_s)
        (if strip interp = strip compiled then "bit-identical" else "DIFFER");
      if strip interp <> strip compiled then
        failwith "compiled replay diverged from interpretation")
    [ Core.Level.L1; Core.Level.L2 ]

(* Fabric smoke: at every timed level, (a) a single master behind the
   arbitrated fabric reproduces the direct single-master run bit for
   bit, and (b) with three contending masters the per-master energy
   buckets sum exactly to the fabric total — so an attribution or
   arbitration regression is visible in every runtest log. *)
let print_fabric_smoke () =
  section "Fabric smoke (degenerate = direct, attribution conserves)";
  let trace = Core.Workloads.table3_trace ~n:64 in
  List.iter
    (fun level ->
      let direct =
        Core.Runner.run_trace ~level ~mode:`Serial ~estimate:true trace
      in
      let fab =
        Core.Contention.run ~level ~mode:`Serial
          [ (Core.Contention.Cpu, trace) ]
      in
      let row = List.hd fab.Core.Contention.rows in
      (* The gate-level [total_pj] sums its two phase accumulators while
         the fabric bucket replays the meter's own commit order — same
         increments, different float association, so rtl is compared to
         an ulp; the transaction levels are meter-backed on both sides
         and must agree exactly (see DESIGN.md 17.3). *)
      let energy_ok =
        let a = direct.Core.Runner.bus_pj
        and b = row.Core.Contention.energy_pj in
        if level = Core.Level.Rtl then
          Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b)
        else a = b
      in
      let exact =
        energy_ok
        && direct.Core.Runner.cycles = fab.Core.Contention.cycles
        && direct.Core.Runner.txns = row.Core.Contention.txns
      in
      let three =
        Core.Contention.run ~level ~mode:`Serial
          (Core.Contention.default_masters ~n:64 Core.Contention.Single)
      in
      let sum =
        List.fold_left
          (fun acc (r : Core.Contention.master_row) ->
            acc +. r.Core.Contention.energy_pj)
          0.0 three.Core.Contention.rows
      in
      let conserved = sum = three.Core.Contention.fabric_pj in
      Printf.printf
        "%s: 1-master fabric %s direct (%d cycles, %.1f pJ); 3-master \
         buckets %s total (%.1f pJ)\n"
        (Core.Level.to_string level)
        (if exact then "=" else "DIFFERS from")
        fab.Core.Contention.cycles row.Core.Contention.energy_pj
        (if conserved then "sum exactly to" else "DO NOT sum to")
        three.Core.Contention.fabric_pj;
      if not exact then
        Printf.printf
          "  direct: %d cycles %d txns %.6f pJ vs fabric: %d cycles %d txns \
           %.6f pJ\n"
          direct.Core.Runner.cycles direct.Core.Runner.txns
          direct.Core.Runner.bus_pj fab.Core.Contention.cycles
          row.Core.Contention.txns row.Core.Contention.energy_pj;
      if not (exact && conserved) then
        failwith "fabric smoke: attribution or degenerate equality broken")
    Core.Level.timed

(* Compiled-fabric smoke (DESIGN.md section 18): at both transaction
   levels a bridged three-master cell evaluated off its fabric plan must
   reproduce the interpreted run bit for bit with conserved buckets and
   a >=4x single-cell speedup; the L1/L2 contention grid swept warm from
   memoized plans must match the interpreted grid bit for bit at >=5x.
   The bars are the PR acceptance floors, so a regression fails runtest
   rather than just shifting a trajectory number. *)
let print_compiled_fabric_smoke () =
  section "Compiled-fabric smoke (plan evaluation = interpretation, bars)";
  let strip (r : Core.Contention.result) =
    ( r.Core.Contention.level, r.Core.Contention.policy,
      r.Core.Contention.topology, r.Core.Contention.cycles,
      r.Core.Contention.fabric_pj, r.Core.Contention.bus_pj,
      r.Core.Contention.bridge_pj, r.Core.Contention.crossings,
      r.Core.Contention.rows )
  in
  let best f =
    (* Best of three keeps the wall-clock bars off scheduler noise. *)
    let rec go n acc =
      if n = 0 then acc
      else begin
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        go (n - 1) (Float.min acc (Unix.gettimeofday () -. t0))
      end
    in
    let v = f () in
    (v, go 3 infinity)
  in
  let levels = [ Core.Level.L1; Core.Level.L2 ] in
  List.iter
    (fun level ->
      let masters =
        Core.Contention.default_masters ~n:256 Core.Contention.Bridged
      in
      let interp, interp_s =
        best (fun () ->
            Core.Contention.run ~level ~mode:`Serial
              ~topology:Core.Contention.Bridged masters)
      in
      let plan =
        Core.Contention.compile ~level ~mode:`Serial
          ~topology:Core.Contention.Bridged masters
      in
      let compiled, compiled_s =
        best (fun () ->
            Core.Contention.replay_plan ~level ~policy:Ec.Arbiter.Round_robin
              ~topology:Core.Contention.Bridged
              ~kinds:(List.map fst masters) plan)
      in
      let sum =
        List.fold_left
          (fun acc (r : Core.Contention.master_row) ->
            acc +. r.Core.Contention.energy_pj)
          0.0 compiled.Core.Contention.rows
      in
      let identical = strip interp = strip compiled in
      let conserved = sum = compiled.Core.Contention.fabric_pj in
      let speedup = interp_s /. Float.max 1e-9 compiled_s in
      Printf.printf
        "%s 3-master bridged cell: interpreted %.1f us, plan eval %.1f us \
         (%.0fx); results %s, buckets %s\n"
        (Core.Level.to_string level) (interp_s *. 1e6) (compiled_s *. 1e6)
        speedup
        (if identical then "bit-identical" else "DIFFER")
        (if conserved then "conserve" else "DO NOT conserve");
      if not identical then
        failwith "compiled fabric replay diverged from interpretation";
      if not conserved then
        failwith "compiled fabric buckets do not sum to the total";
      if speedup < 4.0 then
        failwith "compiled fabric single-cell speedup below the 4x bar")
    levels;
  let pool = Core.Pool.create () in
  let interp_grid, interp_s =
    best (fun () -> Core.Contention.study ~n:256 ~levels ~domains:1 ())
  in
  (* First compiled pass builds and memoizes the plans; the timed sweep
     replays warm, which is the steady state of a parameter sweep. *)
  ignore (Core.Contention.study ~n:256 ~levels ~compiled:true ~pool ~domains:1 ());
  let compiled_grid, compiled_s =
    best (fun () ->
        Core.Contention.study ~n:256 ~levels ~compiled:true ~pool ~domains:1 ())
  in
  let identical =
    List.length interp_grid = List.length compiled_grid
    && List.for_all2
         (fun a b -> strip a = strip b)
         interp_grid compiled_grid
  in
  let speedup = interp_s /. Float.max 1e-9 compiled_s in
  Printf.printf
    "%d-cell contention grid: interpreted %.2f ms, compiled-warm %.2f ms \
     (%.0fx); rows %s\n"
    (List.length interp_grid) (interp_s *. 1e3) (compiled_s *. 1e3) speedup
    (if identical then "bit-identical" else "DIFFER");
  if not identical then
    failwith "compiled contention grid diverged from interpretation";
  if speedup < 5.0 then
    failwith "compiled contention grid speedup below the 5x bar"

(* Serve smoke: its own short-lived daemon (not the leaked benchmark
   one), one run request compared bit-for-bit against the direct
   in-process call, then a clean drain — so a wire or drain regression
   is visible in every runtest log. *)
let print_serve_smoke () =
  section "Serve smoke (daemon round-trip = direct run, graceful drain)";
  let path = Filename.temp_file "serve-smoke" ".sock" in
  Unix.unlink path;
  let server = Serve.Server.create ~unix_path:path ~domains:2 () in
  let thread = Thread.create Serve.Server.serve server in
  let c = Serve.Client.connect (`Unix path) in
  let frames =
    match
      Serve.Client.request c
        (Serve.Protocol.Run
           {
             Serve.Protocol.workload = Serve.Protocol.Table3 64;
             level = Core.Level.L1;
             mode = `Serial;
             estimate = true;
             profile = false;
             compiled = false;
           })
    with
    | Ok frames -> frames
    | Error e -> failwith ("serve smoke request failed: " ^ e)
  in
  let wire =
    match
      List.find_map
        (function Serve.Protocol.Result r -> Some r | _ -> None)
        frames
    with
    | Some r -> r
    | None -> failwith "serve smoke: no result frame"
  in
  let direct =
    Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial ~estimate:true
      ~init:Core.Runner.fill_memories
      (Core.Workloads.table3_trace ~n:64)
  in
  let identical =
    wire.Serve.Protocol.cycles = direct.Core.Runner.cycles
    && wire.Serve.Protocol.txns = direct.Core.Runner.txns
    && wire.Serve.Protocol.bus_pj = direct.Core.Runner.bus_pj
    && wire.Serve.Protocol.component_pj = direct.Core.Runner.component_pj
    && wire.Serve.Protocol.transitions = direct.Core.Runner.transitions
  in
  Printf.printf
    "daemon l1 run: %d txns, %d cycles, %.1f pJ over the wire; %s direct\n"
    wire.Serve.Protocol.txns wire.Serve.Protocol.cycles
    wire.Serve.Protocol.bus_pj
    (if identical then "bit-identical to" else "DIFFERS from");
  Serve.Client.close c;
  Serve.Server.drain server;
  Thread.join thread;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  print_endline "daemon drained cleanly";
  if not identical then failwith "serve smoke diverged from the direct run"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Collected OLS estimates of one benchmark group, sorted by name. *)
let measure_group group =
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances group in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.map (fun (name, ols) ->
         let ns =
           match Analyze.OLS.estimates ols with
           | Some [ v ] -> v
           | Some _ | None -> nan
         in
         (name, ns))

let micro_groups =
  [
    ("table1+2/accuracy-stimulus", bench_accuracy);
    ("table3/256-transactions", bench_performance);
    ("adaptive/mixed-512", bench_adaptive);
    ("adaptive-explore/fib-grid", bench_adaptive_explore);
    ("figure6/profiled-run", bench_figure6);
    ("figure7/fib-applet", bench_exploration);
    ("overhead/obs", bench_obs_overhead);
    ("pool/sessions", bench_pool);
    ("compiled/replay", bench_compiled);
    ("serve/requests", bench_serve);
    ("fabric/contention", bench_fabric);
    ("compiled-fabric/replay", bench_compiled_fabric);
  ]

let run_micro () =
  section "Bechamel micro-benchmarks (wall time per workload unit)";
  List.iter
    (fun (_, group) ->
      List.iter
        (fun (name, ns) ->
          Printf.printf "  %-55s %12.1f us/run\n" name (ns /. 1000.0))
        (measure_group group))
    micro_groups;
  print_serve_latency ()

(* The contention-grid trajectory line: interpreted versus compiled-warm
   wall time of the L1/L2 policy-by-topology sweep, one JSON object so
   the grid speedup is tracked between PRs alongside the micro groups. *)
let contention_grid_json () =
  let levels = [ Core.Level.L1; Core.Level.L2 ] in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let pool = Core.Pool.create () in
  let interp, interp_s =
    timed (fun () -> Core.Contention.study ~n:256 ~levels ~domains:1 ())
  in
  ignore (Core.Contention.study ~n:256 ~levels ~compiled:true ~pool ~domains:1 ());
  let compiled, compiled_s =
    timed (fun () ->
        Core.Contention.study ~n:256 ~levels ~compiled:true ~pool ~domains:1 ())
  in
  let identical =
    List.for_all2
      (fun (a : Core.Contention.result) (b : Core.Contention.result) ->
        a.Core.Contention.cycles = b.Core.Contention.cycles
        && a.Core.Contention.fabric_pj = b.Core.Contention.fabric_pj
        && a.Core.Contention.rows = b.Core.Contention.rows)
      interp compiled
  in
  Printf.printf
    "{\"group\": \"fabric/grid\", \"cells\": %d, \"interpreted_s\": %.6f, \
     \"compiled_warm_s\": %.6f, \"speedup\": %.1f, \"bit_identical\": %b}\n"
    (List.length interp) interp_s compiled_s
    (interp_s /. Float.max 1e-9 compiled_s)
    identical

(* One JSON object per benchmark group, one per line, nanoseconds per run:
   the machine-readable perf trajectory (BENCH_*.json) between PRs. *)
let run_micro_json () =
  List.iter
    (fun (group_name, group) ->
      let prefix = group_name ^ "/" in
      let entries =
        List.map
          (fun (name, ns) ->
            let short =
              if String.length name > String.length prefix
                 && String.sub name 0 (String.length prefix) = prefix
              then
                String.sub name (String.length prefix)
                  (String.length name - String.length prefix)
              else name
            in
            Printf.sprintf "\"%s\": %.1f" (json_escape short) ns)
          (measure_group group)
      in
      Printf.printf "{\"group\": \"%s\", \"unit\": \"ns/run\", \"estimates\": {%s}}\n"
        (json_escape group_name)
        (String.concat ", " entries))
    micro_groups;
  contention_grid_json ();
  serve_latency_json ();
  (* A shortened soak keeps the trajectory line cheap; the full-length
     run lives behind the dedicated serve-soak mode. *)
  serve_soak_json ~duration:3.0 ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = List.mem "--json" args in
  let mode =
    match List.filter (fun a -> a <> "--json") args with
    | m :: _ -> m
    | [] -> "all"
  in
  (match mode with
  | "tables" -> print_tables ()
  | "smoke" ->
    print_tables ~smoke:true ();
    print_adaptive ~smoke:true ();
    print_obs_smoke ();
    print_pool_smoke ();
    print_compiled_smoke ();
    print_fabric_smoke ();
    print_compiled_fabric_smoke ();
    print_serve_smoke ();
    (* Kept light: the smoke alias runs alongside the test suites under
       [dune runtest], and the integration perf checks are wall-clock
       sensitive. *)
    print_serve_soak ~clients:2 ~duration:0.5 ()
  | "micro" -> if json then run_micro_json () else run_micro ()
  | "serve-soak" ->
    if json then serve_soak_json () else print_serve_soak ()
  | "fabric" ->
    (* Just the contention trajectory group (plus the study table when
       human-readable): the quick loop for fabric work. *)
    if json then
      List.iter
        (fun (name, ns) ->
          Printf.printf "{\"group\": \"fabric/contention\", \"name\": \"%s\", \"ns_per_run\": %.1f}\n"
            (json_escape name) ns)
        (measure_group bench_fabric)
    else begin
      section "Fabric contention (wall time per run)";
      List.iter
        (fun (name, ns) ->
          Printf.printf "  %-55s %12.1f us/run\n" name (ns /. 1000.0))
        (measure_group bench_fabric);
      print_newline ();
      print_string (Core.Contention.render_study (Core.Contention.study ()))
    end
  | "adaptive" -> print_adaptive ()
  | "ablations" -> print_ablations ()
  | "extensions" -> print_extensions ()
  | _ ->
    print_tables ();
    print_adaptive ();
    if json then run_micro_json () else run_micro ();
    print_ablations ();
    print_extensions ());
  if not json then print_newline ()
