(* Property-based tests (qcheck): protocol invariants, model equivalence,
   codec roundtrips. *)

open Bus_harness

module Gen = QCheck.Gen

(* --- generators --- *)

let gen_width = Gen.oneofl [ Ec.Txn.W8; Ec.Txn.W16; Ec.Txn.W32 ]

(* A valid transaction over the harness memory map; writes avoid the ROM. *)
let gen_txn =
  let open Gen in
  let* dir = oneofl [ Ec.Txn.Read; Ec.Txn.Write ] in
  let* base =
    match dir with
    | Ec.Txn.Read -> oneofl [ fast_base; slow_base; rom_base ]
    | Ec.Txn.Write -> oneofl [ fast_base; slow_base ]
  in
  let* burst = frequency [ (3, return 1); (1, return 4) ] in
  if burst = 4 then
    let* slot = int_bound 30 in
    let addr = base + (16 * slot) in
    match dir with
    | Ec.Txn.Read -> return (Ec.Txn.burst_read ~id:0 addr)
    | Ec.Txn.Write ->
      let* values = array_size (return 4) (int_bound 0xFFFFFF) in
      return (Ec.Txn.burst_write ~id:0 addr ~values)
  else
    let* width = gen_width in
    let align = match width with Ec.Txn.W8 -> 1 | Ec.Txn.W16 -> 2 | Ec.Txn.W32 -> 4 in
    let* slot = int_bound (0x400 / align) in
    let addr = base + (align * slot) in
    match dir with
    | Ec.Txn.Read ->
      let* kind =
        if base = rom_base && width = Ec.Txn.W32 then
          oneofl [ Ec.Txn.Data; Ec.Txn.Instruction ]
        else return Ec.Txn.Data
      in
      return (Ec.Txn.single_read ~id:0 ~kind ~width addr)
    | Ec.Txn.Write ->
      let* value = int_bound 0xFFFFFF in
      return (Ec.Txn.single_write ~id:0 ~width addr ~value)

let gen_trace =
  let open Gen in
  list_size (int_range 1 40)
    (let* gap = int_bound 3 in
     let* txn = gen_txn in
     return (Ec.Trace.item ~gap txn))

let arb_trace =
  QCheck.make gen_trace
    ~print:(fun t -> String.concat "\n" (Ec.Trace.to_lines t))

(* --- protocol equivalence properties --- *)

let prop_l1_equals_rtl_cycles =
  QCheck.Test.make ~name:"L1 cycles = RTL cycles on any traffic" ~count:60
    arb_trace (fun trace ->
      let _, rtl = run_trace Rtl_l trace in
      let _, l1 = run_trace L1_l trace in
      rtl = l1)

let prop_l1_equals_rtl_transitions =
  QCheck.Test.make ~name:"L1 transitions = RTL transitions" ~count:40 arb_trace
    (fun trace ->
      let h_rtl, _ = run_trace Rtl_l trace in
      let h_l1, _ = run_trace L1_l trace in
      h_rtl.transitions () = h_l1.transitions ())

let prop_l2_serial_equals_l1 =
  QCheck.Test.make ~name:"L2 cycles = L1 cycles on serial traffic" ~count:40
    arb_trace (fun trace ->
      let _, l1 = run_trace ~mode:`Serial L1_l trace in
      let _, l2 = run_trace ~mode:`Serial L2_l trace in
      l1 = l2)

let prop_l2_never_faster_pipelined =
  QCheck.Test.make ~name:"L2 cycles >= L1 cycles pipelined" ~count:40 arb_trace
    (fun trace ->
      let _, l1 = run_trace ~mode:`Pipelined L1_l trace in
      let _, l2 = run_trace ~mode:`Pipelined L2_l trace in
      l2 >= l1)

let prop_all_complete_no_errors =
  QCheck.Test.make ~name:"every valid transaction completes without error"
    ~count:40 arb_trace (fun trace ->
      List.for_all
        (fun level ->
          let h, _ = run_trace level trace in
          h.completed () = List.length trace && h.errors () = 0 && not (h.busy ()))
        all_levels)

let prop_energy_monotone_with_estimation =
  QCheck.Test.make ~name:"RTL energy strictly above L1 (internal nets)"
    ~count:25 arb_trace (fun trace ->
      let h_rtl, _ = run_trace Rtl_l trace in
      let h_l1, _ = run_trace L1_l trace in
      h_rtl.energy_pj () > h_l1.energy_pj ())

let prop_isolated_latency =
  QCheck.Test.make ~name:"isolated latency matches analytic timing" ~count:80
    (QCheck.make gen_txn ~print:(Format.asprintf "%a" Ec.Txn.pp))
    (fun txn ->
      let cfg_for addr =
        if addr >= rom_base then
          Ec.Slave_cfg.make ~name:"rom" ~base:rom_base ~size:0x1000
            ~writable:false ~executable:true ()
        else if addr >= slow_base then
          Ec.Slave_cfg.make ~name:"slow" ~base:slow_base ~size:0x1000
            ~addr_wait:1 ~read_wait:2 ~write_wait:4 ()
        else Ec.Slave_cfg.make ~name:"fast" ~base:fast_base ~size:0x1000 ()
      in
      let expected = Ec.Timing.isolated_latency (cfg_for txn.Ec.Txn.addr) txn in
      List.for_all
        (fun level ->
          let h = build level in
          let txn = Ec.Trace.(instantiate ids (item txn)).Ec.Trace.txn in
          run_one h txn = expected)
        all_levels)

(* --- data transport properties --- *)

let prop_write_read_roundtrip =
  QCheck.Test.make ~name:"write then read returns the value (all levels)"
    ~count:50
    QCheck.(pair (QCheck.make gen_width) (int_bound 0xFFFFFF))
    (fun (width, value) ->
      let align = match width with Ec.Txn.W8 -> 1 | Ec.Txn.W16 -> 2 | Ec.Txn.W32 -> 4 in
      let addr = fast_base + (64 * align) in
      let bits = Ec.Txn.width_bits width in
      let masked = value land ((1 lsl bits) - 1) in
      List.for_all
        (fun level ->
          let h = build level in
          ignore (run_one h (write ~width addr masked));
          let r = read ~width addr in
          ignore (run_one h r);
          r.Ec.Txn.data.(0) = masked)
        all_levels)

(* --- codec roundtrips --- *)

let prop_trace_text_roundtrip =
  QCheck.Test.make ~name:"trace text serialization roundtrip" ~count:100
    arb_trace (fun trace ->
      let back = Ec.Trace.of_lines (Ec.Trace.to_lines trace) in
      List.length back = List.length trace
      && List.for_all2
           (fun a b ->
             a.Ec.Trace.gap = b.Ec.Trace.gap
             && Ec.Txn.equal_payload a.Ec.Trace.txn b.Ec.Trace.txn)
           trace back)

let gen_instr =
  let open Gen in
  let reg = int_bound 31 in
  let imm = int_range (-32768) 32767 in
  let uimm = int_bound 0xFFFF in
  let sh = int_bound 31 in
  let target = int_bound 0x3FFFFFF in
  oneof
    [
      return Soc.Isa.Nop;
      return Soc.Isa.Halt;
      map3 (fun a b c -> Soc.Isa.Add (a, b, c)) reg reg reg;
      map3 (fun a b c -> Soc.Isa.Sub (a, b, c)) reg reg reg;
      map3 (fun a b c -> Soc.Isa.Xor (a, b, c)) reg reg reg;
      map3 (fun a b c -> Soc.Isa.Mul (a, b, c)) reg reg reg;
      map3 (fun a b c -> Soc.Isa.Sll (a, b, c)) reg reg sh;
      map3 (fun a b c -> Soc.Isa.Addi (a, b, c)) reg reg imm;
      map3 (fun a b c -> Soc.Isa.Ori (a, b, c)) reg reg uimm;
      map2 (fun a b -> Soc.Isa.Lui (a, b)) reg uimm;
      map3 (fun a b c -> Soc.Isa.Lw (a, b, c)) reg imm reg;
      map3 (fun a b c -> Soc.Isa.Sb (a, b, c)) reg imm reg;
      map3 (fun a b c -> Soc.Isa.Lw4 (a, b, c)) reg imm reg;
      map3 (fun a b c -> Soc.Isa.Beq (a, b, c)) reg reg imm;
      map (fun t -> Soc.Isa.J t) target;
      map (fun r -> Soc.Isa.Jr r) reg;
    ]

let prop_isa_roundtrip =
  QCheck.Test.make ~name:"isa encode/decode roundtrip" ~count:300
    (QCheck.make gen_instr ~print:Soc.Isa.to_string)
    (fun instr -> Soc.Isa.decode (Soc.Isa.encode instr) = instr)

let gen_bytecode =
  let open Gen in
  let u16 = int_bound 0xFFFF in
  let s16 = int_range (-32768) 32767 in
  let s8 = int_range (-128) 127 in
  oneof
    [
      return Jcvm.Bytecode.Nop;
      return Jcvm.Bytecode.Sadd;
      return Jcvm.Bytecode.Sdiv;
      return Jcvm.Bytecode.Dup;
      return Jcvm.Bytecode.Sastore;
      map (fun v -> Jcvm.Bytecode.Sspush v) s16;
      map (fun v -> Jcvm.Bytecode.Bspush v) s8;
      map (fun v -> Jcvm.Bytecode.Sload v) u16;
      map2 (fun i v -> Jcvm.Bytecode.Sinc (i, v)) u16 s8;
      map (fun v -> Jcvm.Bytecode.Goto v) u16;
      map (fun v -> Jcvm.Bytecode.If_scmplt v) u16;
      map (fun v -> Jcvm.Bytecode.Getstatic v) u16;
      return Jcvm.Bytecode.Sreturn;
    ]

let prop_bytecode_roundtrip =
  QCheck.Test.make ~name:"bytecode encode/decode roundtrip" ~count:100
    (QCheck.make (Gen.array_size (Gen.int_range 1 30) gen_bytecode))
    (fun program ->
      Jcvm.Bytecode.decode (Jcvm.Bytecode.encode program) = program)

(* --- short arithmetic semantics --- *)

let to_short v =
  let v = v land 0xFFFF in
  if v > 32767 then v - 65536 else v

let prop_interp_binops_match_reference =
  let ops =
    [
      (Jcvm.Bytecode.Sadd, ( + ));
      (Jcvm.Bytecode.Ssub, ( - ));
      (Jcvm.Bytecode.Smul, ( * ));
      (Jcvm.Bytecode.Sand, ( land ));
      (Jcvm.Bytecode.Sor, ( lor ));
      (Jcvm.Bytecode.Sxor, ( lxor ));
    ]
  in
  QCheck.Test.make ~name:"interpreter binops = OCaml reference mod 2^16"
    ~count:200
    QCheck.(triple (int_bound 5) (int_range (-32768) 32767) (int_range (-32768) 32767))
    (fun (op_idx, a, b) ->
      let instr, f = List.nth ops op_idx in
      let r =
        Jcvm.Interp.run_soft
          [| Jcvm.Bytecode.Sspush a; Jcvm.Bytecode.Sspush b; instr;
             Jcvm.Bytecode.Sreturn |]
      in
      r.Jcvm.Interp.value = Some (to_short (f a b)))

(* --- stack refinement: random op streams on the packed configuration --- *)

let prop_packed_adapter_equals_soft =
  QCheck.Test.make ~name:"packed hw stack = soft stack on random op streams"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 1 120) (option (int_range (-32768) 32767)))
    (fun script ->
      (* [Some v] pushes, [None] pops when non-empty. *)
      let config =
        List.find
          (fun c -> c.Jcvm.Configs.name = "w32-packed")
          Jcvm.Configs.standard
      in
      let kernel = Sim.Kernel.create () in
      let hw = Jcvm.Hw_stack.create config in
      let bus =
        Tlm1.Bus.create ~kernel
          ~decoder:(Ec.Decoder.create [ Jcvm.Hw_stack.slave hw ])
          ()
      in
      let adapter =
        Jcvm.Master_adapter.create ~kernel ~port:(Tlm1.Bus.port bus) config
      in
      let hw_ops = Jcvm.Master_adapter.ops adapter in
      let soft = Jcvm.Soft_stack.create ~capacity:256 () in
      let soft_ops = Jcvm.Soft_stack.ops soft in
      List.for_all
        (fun step ->
          match step with
          | Some v ->
            if soft_ops.Jcvm.Stack_intf.depth () >= 250 then true
            else begin
              hw_ops.Jcvm.Stack_intf.push v;
              soft_ops.Jcvm.Stack_intf.push v;
              true
            end
          | None ->
            if soft_ops.Jcvm.Stack_intf.depth () = 0 then true
            else hw_ops.Jcvm.Stack_intf.pop () = soft_ops.Jcvm.Stack_intf.pop ())
        script
      && hw_ops.Jcvm.Stack_intf.depth () = soft_ops.Jcvm.Stack_intf.depth ())

(* --- misc invariants --- *)

let prop_signal_commit_counts =
  QCheck.Test.make ~name:"signal commit counts = popcount(xor)" ~count:200
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (a, b) ->
      let s = Sim.Signal.create ~name:"p" ~width:32 in
      Sim.Signal.set s a;
      ignore (Sim.Signal.commit s);
      Sim.Signal.set s b;
      let toggles = Sim.Signal.commit s in
      toggles = Sim.Signal.popcount (a lxor b)
      && Sim.Signal.transitions s = Sim.Signal.popcount a + toggles)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:200
    QCheck.(pair (int_bound 1000) (int_range 1 10000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create ~seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_profile_lumps_cover =
  QCheck.Test.make ~name:"lumped samples always sum to profile total"
    ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 10.0))
              (list_of_size (Gen.int_range 0 5) (int_bound 60)))
    (fun (values, points) ->
      let p = Power.Profile.create () in
      List.iter (Power.Profile.push p) values;
      let lumps = Power.Profile.lumped p ~sample_points:points in
      let sum = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 lumps in
      Float.abs (sum -. Power.Profile.total p) < 1e-9)

(* Zero-gap traces keep the request rings and the outstanding store at
   the category limits, exercising the preallocated-buffer rework of the
   rtl bus and trace master where it wraps and swaps the most. *)
let gen_pressure_trace =
  Gen.list_size (Gen.int_range 20 60)
    (Gen.map (fun txn -> Ec.Trace.item ~gap:0 txn) gen_txn)

let prop_l1_equals_rtl_under_queue_pressure =
  QCheck.Test.make ~name:"L1 = RTL cycles/counts under queue pressure"
    ~count:40
    (QCheck.make gen_pressure_trace
       ~print:(fun t -> String.concat "\n" (Ec.Trace.to_lines t)))
    (fun trace ->
      let h_rtl, rtl_cycles = run_trace ~mode:`Pipelined Rtl_l trace in
      let h_l1, l1_cycles = run_trace ~mode:`Pipelined L1_l trace in
      rtl_cycles = l1_cycles
      && h_rtl.completed () = h_l1.completed ()
      && h_rtl.completed () = List.length trace
      && h_rtl.errors () = h_l1.errors ()
      && not (h_rtl.busy ()))

(* The preallocated structures against their library models. *)
let gen_ring_ops =
  Gen.list_size (Gen.int_range 1 200)
    Gen.(frequency [ (3, map (fun v -> `Push v) (int_bound 1000)); (2, return `Pop) ])

let prop_ring_models_queue =
  QCheck.Test.make ~name:"Ec.Ring behaves like Queue" ~count:200
    (QCheck.make gen_ring_ops
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function `Push v -> Printf.sprintf "push %d" v | `Pop -> "pop")
              ops)))
    (fun ops ->
      (* Capacity 2 forces growth and wrap-around early. *)
      let ring = Ec.Ring.create ~capacity:2 ~dummy:(-1) () in
      let queue = Queue.create () in
      List.for_all
        (function
          | `Push v ->
            Ec.Ring.push ring v;
            Queue.push v queue;
            Ec.Ring.length ring = Queue.length queue
          | `Pop ->
            Ec.Ring.pop_opt ring = (if Queue.is_empty queue then None
                                    else Some (Queue.pop queue)))
        ops)

let gen_store_ops =
  let open Gen in
  let key = int_bound 7 in
  list_size (int_range 1 200)
    (frequency
       [
         (3, map2 (fun k v -> `Set (k, v)) key (int_bound 1000));
         (2, map (fun k -> `Find k) key);
         (2, map (fun k -> `Remove k) key);
       ])

let prop_id_store_models_hashtbl =
  QCheck.Test.make ~name:"Ec.Id_store behaves like Hashtbl" ~count:200
    (QCheck.make gen_store_ops
       ~print:(fun ops ->
         String.concat ";"
           (List.map
              (function
                | `Set (k, v) -> Printf.sprintf "set %d=%d" k v
                | `Find k -> Printf.sprintf "find %d" k
                | `Remove k -> Printf.sprintf "remove %d" k)
              ops)))
    (fun ops ->
      (* Capacity 2 forces growth; 8 keys force collisions and swaps. *)
      let store = Ec.Id_store.create ~capacity:2 ~dummy:(-1) () in
      let tbl = Hashtbl.create 8 in
      List.for_all
        (function
          | `Set (k, v) ->
            Ec.Id_store.set store k v;
            Hashtbl.replace tbl k v;
            Ec.Id_store.length store = Hashtbl.length tbl
          | `Find k ->
            Ec.Id_store.find_default store k ~default:(-1)
            = Option.value (Hashtbl.find_opt tbl k) ~default:(-1)
            && Ec.Id_store.mem store k = Hashtbl.mem tbl k
          | `Remove k ->
            Ec.Id_store.remove store k;
            Hashtbl.remove tbl k;
            Ec.Id_store.length store = Hashtbl.length tbl)
        ops)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_l1_equals_rtl_cycles;
      prop_l1_equals_rtl_transitions;
      prop_l2_serial_equals_l1;
      prop_l2_never_faster_pipelined;
      prop_l1_equals_rtl_under_queue_pressure;
      prop_ring_models_queue;
      prop_id_store_models_hashtbl;
      prop_all_complete_no_errors;
      prop_energy_monotone_with_estimation;
      prop_isolated_latency;
      prop_write_read_roundtrip;
      prop_trace_text_roundtrip;
      prop_isa_roundtrip;
      prop_bytecode_roundtrip;
      prop_interp_binops_match_reference;
      prop_packed_adapter_equals_soft;
      prop_signal_commit_counts;
      prop_rng_int_bounds;
      prop_profile_lumps_cover;
    ]

(* --- extension properties --- *)

let gen_apdu =
  let open Gen in
  let byte = int_bound 0xFF in
  let* ins = byte in
  let* p1 = byte in
  let* p2 = byte in
  let* data = list_size (int_bound 20) byte in
  let* le = option (int_range 1 256) in
  return (Iso7816.Apdu.command ~ins ~p1 ~p2 ~data ?le ())

let prop_apdu_roundtrip =
  QCheck.Test.make ~name:"APDU encode/decode roundtrip (cases 1-4)" ~count:300
    (QCheck.make gen_apdu
       ~print:(Format.asprintf "%a" Iso7816.Apdu.pp_command))
    (fun c ->
      match Iso7816.Apdu.decode_command (Iso7816.Apdu.encode_command c) with
      | Ok back -> back = c
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"APDU response roundtrip" ~count:200
    QCheck.(pair (list_of_size (Gen.int_bound 16) (int_bound 0xFF)) (int_bound 0xFFFF))
    (fun (data, sw) ->
      let r = Iso7816.Apdu.response ~data sw in
      match Iso7816.Apdu.decode_response (Iso7816.Apdu.encode_response r) with
      | Ok back -> back = r
      | Error _ -> false)

let prop_bridge_matches_channel =
  QCheck.Test.make ~name:"layer-3 bridge data = layer-3 channel data" ~count:30
    QCheck.(pair (int_bound 60) (int_range 1 12))
    (fun (slot, words) ->
      let h = build L1_l in
      for w = 0 to 127 do
        Soc.Memory.poke32 h.fast ~addr:(fast_base + (4 * w)) ((w * 1103) land 0xFFFFF)
      done;
      let addr = fast_base + (4 * slot) in
      let decoder =
        Ec.Decoder.create
          [ Soc.Memory.slave h.fast; Soc.Memory.slave h.slow; Soc.Memory.slave h.rom ]
      in
      let ch = Tlm3.Channel.create decoder in
      let bridge = Tlm3.Bridge.create ~kernel:h.kernel ~port:h.port in
      match
        ( Tlm3.Channel.read ch { Tlm3.Channel.addr; words },
          Tlm3.Bridge.read bridge ~addr ~words )
      with
      | Tlm3.Channel.Ok_data a, (Tlm3.Channel.Ok_data b, _) -> a = b
      | _, _ -> false)

let prop_gray_coding_neighbours =
  QCheck.Test.make ~name:"gray codes of consecutive ints differ in one bit"
    ~count:300
    QCheck.(int_bound 100000)
    (fun v ->
      Sim.Signal.popcount
        (Power.Coding.gray_encode v lxor Power.Coding.gray_encode (v + 1))
      = 1)

let prop_budget_scales_linearly =
  QCheck.Test.make ~name:"budget current scales linearly with energy" ~count:100
    QCheck.(pair (float_bound_inclusive 1e6) (int_range 1 100000))
    (fun (pj, cycles) ->
      let i1 =
        Power.Budget.average_current_ma ~energy_pj:pj ~cycles ~clock_hz:1e7
          ~supply_v:5.0
      in
      let i2 =
        Power.Budget.average_current_ma ~energy_pj:(2.0 *. pj) ~cycles
          ~clock_hz:1e7 ~supply_v:5.0
      in
      Float.abs (i2 -. (2.0 *. i1)) < 1e-9 *. Float.max 1.0 i2)

let extension_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_apdu_roundtrip;
      prop_response_roundtrip;
      prop_bridge_matches_channel;
      prop_gray_coding_neighbours;
      prop_budget_scales_linearly;
    ]

let suite = suite @ extension_props

(* --- CPU semantics: random straight-line programs vs a pure reference --- *)

let gen_alu_instr =
  let open Gen in
  (* Registers r1..r7, so r0's zero-wiring is also exercised as source. *)
  let reg = int_range 1 7 in
  let src = int_range 0 7 in
  let imm = int_range (-1000) 1000 in
  let uimm = int_bound 0xFFFF in
  oneof
    [
      map3 (fun d a b -> Soc.Isa.Add (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.Sub (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.And (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.Or (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.Xor (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.Slt (d, a, b)) reg src src;
      map3 (fun d a b -> Soc.Isa.Mul (d, a, b)) reg src src;
      map3 (fun d a sh -> Soc.Isa.Sll (d, a, sh)) reg src (int_bound 31);
      map3 (fun d a sh -> Soc.Isa.Srl (d, a, sh)) reg src (int_bound 31);
      map3 (fun d a i -> Soc.Isa.Addi (d, a, i)) reg src imm;
      map3 (fun d a i -> Soc.Isa.Xori (d, a, i)) reg src uimm;
      map2 (fun d i -> Soc.Isa.Lui (d, i)) reg uimm;
      map3 (fun d a i -> Soc.Isa.Slti (d, a, i)) reg src imm;
    ]

(* Pure reference semantics of the ALU subset. *)
let reference_alu regs instr =
  let mask32 v = v land 0xFFFFFFFF in
  let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  let get r = if r = 0 then 0 else regs.(r) in
  let set r v = if r <> 0 then regs.(r) <- mask32 v in
  match instr with
  | Soc.Isa.Add (d, a, b) -> set d (get a + get b)
  | Soc.Isa.Sub (d, a, b) -> set d (get a - get b)
  | Soc.Isa.And (d, a, b) -> set d (get a land get b)
  | Soc.Isa.Or (d, a, b) -> set d (get a lor get b)
  | Soc.Isa.Xor (d, a, b) -> set d (get a lxor get b)
  | Soc.Isa.Slt (d, a, b) -> set d (if signed (get a) < signed (get b) then 1 else 0)
  | Soc.Isa.Mul (d, a, b) -> set d (get a * get b)
  | Soc.Isa.Sll (d, a, sh) -> set d (get a lsl sh)
  | Soc.Isa.Srl (d, a, sh) -> set d (get a lsr sh)
  | Soc.Isa.Addi (d, a, i) -> set d (get a + i)
  | Soc.Isa.Xori (d, a, i) -> set d (get a lxor i)
  | Soc.Isa.Lui (d, i) -> set d (i lsl 16)
  | Soc.Isa.Slti (d, a, i) -> set d (if signed (get a) < i then 1 else 0)
  | _ -> assert false

let prop_cpu_matches_reference =
  QCheck.Test.make ~name:"CPU register semantics = pure reference" ~count:60
    (QCheck.make
       (Gen.list_size (Gen.int_range 1 40) gen_alu_instr)
       ~print:(fun instrs ->
         String.concat "\n" (List.map Soc.Isa.to_string instrs)))
    (fun instrs ->
      (* Reference execution. *)
      let expected = Array.make 8 0 in
      List.iter (reference_alu expected) instrs;
      (* Simulated execution over the bus. *)
      let h = build L1_l in
      let words =
        Array.of_list (List.map Soc.Isa.encode instrs @ [ Soc.Isa.encode Soc.Isa.Halt ])
      in
      Soc.Memory.load_words h.fast ~addr:fast_base words;
      let cpu = Soc.Cpu.create ~kernel:h.kernel ~port:h.port () in
      ignore (Soc.Cpu.run_to_halt cpu ~kernel:h.kernel ());
      List.for_all (fun r -> Soc.Cpu.reg cpu r = expected.(r)) [ 1; 2; 3; 4; 5; 6; 7 ])

let prop_icache_transparent =
  QCheck.Test.make ~name:"icache is architecturally transparent" ~count:12
    QCheck.(pair (int_bound 3) (int_range 4 10))
    (fun (size_idx, n) ->
      let lines = [| 1; 2; 8; 32 |].(size_idx) in
      let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n) in
      let dump icache_lines =
        let run = Core.Runner.run_program ?icache_lines program in
        let ram = Soc.Platform.ram (Core.System.platform run.Core.Runner.system) in
        ( run.Core.Runner.fault,
          List.init n (fun i ->
              Soc.Memory.peek32 ram ~addr:(Soc.Platform.Map.ram_base + (4 * i))) )
      in
      dump None = dump (Some lines))

let cpu_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cpu_matches_reference; prop_icache_transparent ]

let suite = suite @ cpu_props

(* --- optimized vs reference gate-level observation kernel --- *)

(* The optimized Diesel path (precomputed energy tables, word-level bit
   scans) must be bit-for-bit equal to the naive reference path it
   replaced, on every accumulator, for any stimulus and parameter set. *)

let diesel_params = [| Rtl.Params.default; Rtl.Params.ideal;
                       { Rtl.Params.default with Rtl.Params.coupling_ratio = 0.4;
                         slope_rise = 1.2; slope_fall = 0.8 } |]

let drive_random rng wires =
  Sim.Signal.set (Rtl.Wires.addr wires) (Sim.Rng.bits rng 34);
  if Sim.Rng.bool rng then Sim.Signal.set (Rtl.Wires.be wires) (Sim.Rng.bits rng 4);
  Sim.Signal.set (Rtl.Wires.wdata wires) (Sim.Rng.bits rng 32);
  if Sim.Rng.bool rng then Sim.Signal.set (Rtl.Wires.rdata wires) (Sim.Rng.bits rng 32);
  List.iter
    (fun c -> Rtl.Wires.set_ctrl wires c (Sim.Rng.bool rng))
    Ec.Signals.all_ctrl;
  Sim.Signal.set (Rtl.Wires.sel wires) (Sim.Rng.bits rng 4)

let prop_diesel_fast_equals_reference =
  QCheck.Test.make
    ~name:"optimized Diesel kernel = naive reference kernel (bit-exact)"
    ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 1 120) (int_bound 2))
    (fun (seed, cycles, param_idx) ->
      let params = diesel_params.(param_idx) in
      let run ~reference =
        let wires = Rtl.Wires.create ~n_slaves:4 in
        let d = Rtl.Diesel.create ~params ~reference wires in
        let rng = Sim.Rng.create ~seed in
        for _ = 1 to cycles do
          drive_random rng wires;
          Rtl.Diesel.observe_and_commit d
        done;
        d
      in
      let fast = run ~reference:false and ref_ = run ~reference:true in
      Rtl.Diesel.interface_pj fast = Rtl.Diesel.interface_pj ref_
      && Rtl.Diesel.internal_pj fast = Rtl.Diesel.internal_pj ref_
      && Rtl.Diesel.per_signal_transitions fast
         = Rtl.Diesel.per_signal_transitions ref_
      && Rtl.Diesel.per_signal_energy_pj fast
         = Rtl.Diesel.per_signal_energy_pj ref_
      && Power.Meter.total_pj (Rtl.Diesel.meter fast)
         = Power.Meter.total_pj (Rtl.Diesel.meter ref_))

let diesel_props =
  List.map QCheck_alcotest.to_alcotest [ prop_diesel_fast_equals_reference ]

let suite = suite @ diesel_props

(* --- pooled resettable sessions: reset replay = fresh build --- *)

(* A pooled session must be indistinguishable, number for number, from a
   freshly built one: same cycles, same transaction counts, same energies
   to the last bit of the float accumulators.  Everything below compares
   a pool-drawn run against its fresh-build twin on random stimuli. *)

(* Everything but the wall clock and the (absent) profile. *)
let strip_result (r : Core.Runner.result) =
  ( r.Core.Runner.level,
    r.Core.Runner.cycles,
    r.Core.Runner.txns,
    r.Core.Runner.beats,
    r.Core.Runner.errors,
    r.Core.Runner.bus_pj,
    r.Core.Runner.component_pj,
    r.Core.Runner.transitions )

let strip_splice (s : Hier.Splice.t) =
  ( List.map
      (fun (w : Hier.Splice.window) ->
        ( w.Hier.Splice.index, w.level, w.start_cycle, w.cycles, w.txns,
          w.beats, w.errors, w.bus_pj, w.component_pj, w.err_bound_pj,
          w.provenance ))
      s.Hier.Splice.windows,
    s.Hier.Splice.total_cycles, s.Hier.Splice.total_txns,
    s.Hier.Splice.total_beats, s.Hier.Splice.total_errors,
    s.Hier.Splice.total_bus_pj, s.Hier.Splice.total_component_pj,
    s.Hier.Splice.error_bound_pj, s.Hier.Splice.switches )

let strip_adaptive (a : Core.Runner.adaptive_run) =
  ( a.Core.Runner.cycles, a.Core.Runner.txns, a.Core.Runner.beats,
    a.Core.Runner.errors, a.Core.Runner.bus_pj, a.Core.Runner.component_pj,
    a.Core.Runner.switches, strip_splice a.Core.Runner.splice )

(* Random platform-map traffic, reproducible from a compact seed triple. *)
let arb_seeded_trace =
  QCheck.make
    Gen.(triple (int_bound 1_000_000) (int_range 8 80) (int_bound 3))
    ~print:(fun (seed, n, max_gap) ->
      Printf.sprintf "seed=%d n=%d max_gap=%d" seed n max_gap)

let seeded_trace (seed, n, max_gap) =
  Core.Workloads.random_trace ~rng:(Sim.Rng.create ~seed) ~n ~max_gap ()

let prop_pooled_trace_bit_exact =
  QCheck.Test.make
    ~name:"pooled run_trace = fresh run_trace, bit-exact (all levels)"
    ~count:8
    (QCheck.pair arb_seeded_trace arb_seeded_trace)
    (fun (a, b) ->
      let ta = seeded_trace a and tb = seeded_trace b in
      let pool = Core.Pool.create () in
      List.for_all
        (fun level ->
          let fresh tr = strip_result (Core.Runner.run_trace ~level tr) in
          let pooled tr =
            strip_result (Core.Runner.run_trace ~level ~pool tr)
          in
          (* Two different traces back-to-back on one pooled session, then
             the first again: any state leaking across a reset shows up in
             one of the three comparisons against the fresh-build twins. *)
          pooled ta = fresh ta && pooled tb = fresh tb && pooled ta = fresh ta)
        [ Core.Level.Rtl; Core.Level.L1; Core.Level.L2 ]
      && Core.Pool.builds pool = 3 (* one session per level, ever *)
      && Core.Pool.hits pool = 6)

let prop_pooled_program_bit_exact =
  QCheck.Test.make ~name:"pooled run_program = fresh run_program" ~count:6
    (QCheck.make
       Gen.(pair (int_range 4 10) (int_bound 2))
       ~print:(fun (n, idx) -> Printf.sprintf "n=%d icache_idx=%d" n idx))
    (fun (n, size_idx) ->
      let icache_lines = [| None; Some 2; Some 8 |].(size_idx) in
      let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n) in
      let strip_run (pr : Core.Runner.program_run) =
        (strip_result pr.Core.Runner.result, pr.Core.Runner.fault)
      in
      let fresh =
        strip_run (Core.Runner.run_program ?icache_lines program)
      in
      let pool = Core.Pool.create () in
      let pooled () =
        strip_run (Core.Runner.run_program ?icache_lines ~pool program)
      in
      pooled () = fresh && pooled () = fresh && Core.Pool.builds pool = 1)

let prop_pooled_adaptive_bit_exact =
  QCheck.Test.make
    ~name:"pooled run_adaptive = fresh run_adaptive (spliced totals)"
    ~count:5
    (QCheck.make
       Gen.(pair (int_range 200 900) (int_range 48 128))
       ~print:(fun (n, phase) -> Printf.sprintf "n=%d phase=%d" n phase))
    (fun (n, phase) ->
      let trace = Core.Workloads.mixed_phase_trace ~phase ~n () in
      let policy = Core.Experiments.adaptive_policy in
      let fresh = strip_adaptive (Core.Runner.run_adaptive ~policy trace) in
      let pool = Core.Pool.create () in
      let pooled () =
        strip_adaptive (Core.Runner.run_adaptive ~pool ~policy trace)
      in
      (* Twice on the pool: the second replay reuses the systems the
         engine released window by window during the first. *)
      pooled () = fresh && pooled () = fresh)

let strip_row (r : Core.Exploration.row) =
  ( r.Core.Exploration.config.Jcvm.Configs.name,
    r.Core.Exploration.applet, r.Core.Exploration.level,
    r.Core.Exploration.cycles, r.Core.Exploration.bus_pj,
    r.Core.Exploration.transactions, r.Core.Exploration.steps,
    r.Core.Exploration.value, r.Core.Exploration.correct,
    Option.map strip_splice r.Core.Exploration.provenance )

let prop_pooled_exploration_cell_bit_exact =
  QCheck.Test.make
    ~name:"pooled exploration cell = fresh cell (fixed and live adaptive)"
    ~count:4
    (QCheck.make
       Gen.(
         pair (int_bound 2)
           (int_bound (List.length Jcvm.Configs.standard - 1)))
       ~print:(fun (a, c) -> Printf.sprintf "applet_idx=%d config_idx=%d" a c))
    (fun (applet_idx, config_idx) ->
      let applet =
        List.nth [ Jcvm.Applets.fib; Jcvm.Applets.gcd; Jcvm.Applets.crc16 ]
          applet_idx
      in
      let config = List.nth Jcvm.Configs.standard config_idx in
      let policy = Hier.Policy.for_exploration () in
      let fresh_fixed = strip_row (Core.Exploration.run_one ~config applet) in
      let fresh_live =
        strip_row (Core.Exploration.run_one ~policy ~config applet)
      in
      let pool = Core.Pool.create () in
      let pooled_fixed () =
        strip_row (Core.Exploration.run_one ~pool ~config applet)
      in
      let pooled_live () =
        strip_row (Core.Exploration.run_one ~pool ~policy ~config applet)
      in
      pooled_fixed () = fresh_fixed
      && pooled_live () = fresh_live
      && pooled_fixed () = fresh_fixed
      && pooled_live () = fresh_live)

let pool_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pooled_trace_bit_exact;
      prop_pooled_program_bit_exact;
      prop_pooled_adaptive_bit_exact;
      prop_pooled_exploration_cell_bit_exact;
    ]

let suite = suite @ pool_props

(* --- compiled trace replay: plan evaluation = interpretation --- *)

(* The trace compiler's whole contract is bit-exactness (DESIGN.md
   section 14): the plan's energy fold must reproduce the interpreted
   estimator's floats to the last bit — totals and the per-cycle
   profile — at every covered level and bus cadence, and a multi-point
   batch must equal the corresponding single-point replays. *)

let profile_bits (r : Core.Runner.result) =
  Option.map Power.Profile.to_array r.Core.Runner.profile

let prop_compiled_trace_bit_exact =
  QCheck.Test.make
    ~name:"compiled run_trace = interpreted run_trace (L1/L2 x cadence)"
    ~count:8 arb_seeded_trace
    (fun seeded ->
      let trace = seeded_trace seeded in
      List.for_all
        (fun (level, mode) ->
          let run compiled =
            Core.Runner.run_trace ~level ~mode ~record_profile:true ~compiled
              trace
          in
          let i = run false and c = run true in
          strip_result i = strip_result c && profile_bits i = profile_bits c)
        [
          (Core.Level.L1, `Serial);
          (Core.Level.L1, `Pipelined);
          (Core.Level.L2, `Serial);
          (Core.Level.L2, `Pipelined);
        ])

(* Three parameter points spanning table scaling and a layer-2 lump
   variant — enough to catch any cross-lane bleed in the shared decode. *)
let compiled_points =
  [
    { Compile.Eval.table = Power.Characterization.default; l2_params = None };
    {
      Compile.Eval.table =
        Power.Characterization.scale Power.Characterization.default 0.5;
      l2_params =
        Some
          {
            Tlm2.Energy.default_params with
            Tlm2.Energy.boundary_data_toggles = 9.0;
          };
    };
    {
      Compile.Eval.table =
        Power.Characterization.scale Power.Characterization.default 1.75;
      l2_params = None;
    };
  ]

let prop_compiled_multi_point =
  QCheck.Test.make
    ~name:"multi-point replay = N single replays = N interpreted runs"
    ~count:6 arb_seeded_trace
    (fun seeded ->
      let trace = seeded_trace seeded in
      List.for_all
        (fun level ->
          let plan = Core.Runner.compile_trace ~level trace in
          let multi =
            Core.Runner.replay_multi ~record_profile:true
              ~points:compiled_points plan
          in
          List.for_all2
            (fun (pt : Compile.Eval.point) m ->
              let single =
                Core.Runner.replay_compiled ~record_profile:true
                  ~table:pt.Compile.Eval.table
                  ?l2_params:pt.Compile.Eval.l2_params plan
              in
              let interp =
                Core.Runner.run_trace ~level ~record_profile:true
                  ~table:pt.Compile.Eval.table
                  ?l2_params:pt.Compile.Eval.l2_params trace
              in
              strip_result m = strip_result single
              && strip_result m = strip_result interp
              && profile_bits m = profile_bits single
              && profile_bits m = profile_bits interp)
            compiled_points multi)
        [ Core.Level.L1; Core.Level.L2 ])

(* Compiled mode is sink-free by design: a plan carries no event stream,
   so a run with a sink — and any gate-level run — must silently take
   the interpreted path and never touch the plan memo.  This pins that
   documented fallback. *)
let prop_compiled_sink_fallback =
  QCheck.Test.make ~name:"compiled + sink / rtl falls back to interpretation"
    ~count:4 arb_seeded_trace
    (fun seeded ->
      let trace = seeded_trace seeded in
      let pool = Core.Pool.create () in
      let baseline =
        strip_result (Core.Runner.run_trace ~level:Core.Level.L1 trace)
      in
      let with_sink =
        strip_result
          (Core.Runner.run_trace ~level:Core.Level.L1 ~compiled:true
             ~sink:(Obs.Sink.create ()) ~pool trace)
      in
      let rtl_plain =
        strip_result (Core.Runner.run_trace ~level:Core.Level.Rtl trace)
      in
      let rtl_compiled =
        strip_result
          (Core.Runner.run_trace ~level:Core.Level.Rtl ~compiled:true trace)
      in
      with_sink = baseline
      && rtl_compiled = rtl_plain
      && Core.Pool.memo_builds pool = 0 (* no plan was ever compiled *))

let prop_plan_memo_counters =
  QCheck.Test.make ~name:"plan memo: one build then hits, bit-exact replays"
    ~count:6 arb_seeded_trace
    (fun seeded ->
      let trace = seeded_trace seeded in
      let pool = Core.Pool.create () in
      let run () =
        strip_result
          (Core.Runner.run_trace ~level:Core.Level.L1 ~compiled:true ~pool
             trace)
      in
      let a = run () in
      let b = run () in
      a = b
      && Core.Pool.memo_builds pool = 1
      && Core.Pool.memo_hits pool = 1)

let compiled_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compiled_trace_bit_exact;
      prop_compiled_multi_point;
      prop_compiled_sink_fallback;
      prop_plan_memo_counters;
    ]

let suite = suite @ compiled_props
