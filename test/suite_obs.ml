(* The instrumentation layer: event ordering, metrics reconciliation,
   Chrome trace well-formedness, and the contract that attaching a sink
   never changes what is simulated. *)

module Gen = QCheck.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let instrumented_run ?(level = Core.Level.L1) ?(mode = `Serial) ?(n = 128) () =
  let sink = Obs.Sink.create () in
  let trace = Core.Workloads.table3_trace ~n in
  let r = Core.Runner.run_trace ~level ~mode ~sink trace in
  (sink, r)

(* --- event ordering --- *)

(* issue <= grant <= beats <= finish per transaction id, and ids are
   unique per lifecycle on the zero-gap stimulus (ids recycle only after
   the finish, which the monotone check tolerates by keeping the last
   occurrence). *)
let lifecycle_ordered events =
  let tbl = Hashtbl.create 64 in
  let slot id = try Hashtbl.find tbl id with Not_found -> (-1, -1, -1) in
  List.for_all
    (fun (e : Obs.Event.t) ->
      let issue, grant, finish = slot e.id in
      match e.kind with
      | Obs.Event.Txn_issued ->
        Hashtbl.replace tbl e.id (e.cycle, -1, -1);
        (* A new lifecycle may only start after the previous finished. *)
        issue < 0 || finish >= 0
      | Obs.Event.Txn_granted ->
        Hashtbl.replace tbl e.id (issue, e.cycle, finish);
        issue >= 0 && issue <= e.cycle
      | Obs.Event.Data_beat -> grant >= 0 && grant <= e.cycle
      | Obs.Event.Txn_finished | Obs.Event.Txn_error ->
        Hashtbl.replace tbl e.id (issue, grant, e.cycle);
        issue >= 0 && grant >= 0 && grant <= e.cycle
      | _ -> true)
    events

let test_event_ordering () =
  List.iter
    (fun level ->
      let sink, _ = instrumented_run ~level ~n:96 () in
      check_bool
        (Core.Level.to_string level ^ " lifecycle ordered")
        true
        (lifecycle_ordered (Obs.Sink.events sink)))
    Core.Level.all

let prop_event_ordering =
  QCheck.Test.make ~name:"issue <= grant <= finish on random traffic"
    ~count:25
    QCheck.(int_range 1 80)
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let trace = Core.Workloads.random_trace ~rng ~n:40 () in
      let sink = Obs.Sink.create () in
      ignore
        (Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Pipelined ~sink
           trace);
      lifecycle_ordered (Obs.Sink.events sink))

(* --- JSON print/parse round-trip --- *)

(* Strings assembled from fragments that stress every escape path:
   quotes, backslashes, the named escapes, raw control bytes, DEL,
   non-ASCII bytes and the solidus. *)
let gen_json_string =
  Gen.(
    map (String.concat "")
      (list_size (int_bound 6)
         (oneofl
            [ "a"; "key"; " "; "\""; "\\"; "\\u"; "/"; "\n"; "\r"; "\t";
              "\b"; "\012"; "\x00"; "\x01"; "\x1f"; "\x7f"; "\xc3\xa9";
              "\xff"; "{}[]:,"; "0" ])))

(* NaN/inf are deliberately excluded: the printer folds them to [null]
   by design, which no round-trip can survive. *)
let gen_json_float =
  Gen.(
    oneof
      [
        oneofl
          [ 0.0; -0.0; 1.0; -1.0; 0.5; -2.5; 0.1; 1e-300; 5e-324;
            max_float; -.max_float; min_float; epsilon_float;
            (* the %.17g-prints-as-digits danger window *)
            1e15; 1e15 -. 2.0; 1e15 +. 2.0; 2e15; 9007199254740992.0;
            9007199254740993e1; 1e16; 1e16 +. 4.0; 1e17 -. 16.0; 1e17;
            123456789012345.5; -2.5e15; 1e18; -3e16 ];
        float_bound_exclusive 1.0;
        map Float.round (float_bound_exclusive 1e17);
        map (fun f -> -.f) (map Float.round (float_bound_exclusive 1e17));
        map
          (fun bits ->
            let f = Int64.float_of_bits bits in
            if Float.is_nan f || f = infinity || f = neg_infinity then 0.0
            else f)
          (map Int64.of_int int);
      ])

let rec gen_json_value depth =
  let open Gen in
  let scalar =
    oneof
      [
        return Obs.Json.Null;
        map (fun b -> Obs.Json.Bool b) bool;
        map (fun i -> Obs.Json.Int i) (oneof [ int; oneofl [ max_int; min_int; 0; -1 ] ]);
        map (fun f -> Obs.Json.Float f) gen_json_float;
        map (fun s -> Obs.Json.String s) gen_json_string;
      ]
  in
  if depth = 0 then scalar
  else
    frequency
      [
        (3, scalar);
        ( 1,
          map
            (fun l -> Obs.Json.List l)
            (list_size (int_bound 4) (gen_json_value (depth - 1))) );
        ( 1,
          map
            (fun kvs -> Obs.Json.Obj kvs)
            (list_size (int_bound 4)
               (pair gen_json_string (gen_json_value (depth - 1)))) );
      ]

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json print/parse round-trip (bit-exact)" ~count:2000
    (QCheck.make (gen_json_value 3) ~print:Obs.Json.to_string)
    (fun doc ->
      match Obs.Json.of_string (Obs.Json.to_string doc) with
      | Error e -> QCheck.Test.fail_reportf "does not parse back: %s" e
      | Ok doc' ->
        Obs.Json.equal doc doc'
        || QCheck.Test.fail_reportf "parsed back as %s"
             (Obs.Json.to_string doc'))

(* --- metrics reconciliation --- *)

let hist name (v : Obs.Metrics.view) =
  List.find (fun h -> h.Obs.Metrics.name = name) v.Obs.Metrics.hists

let test_metrics_reconcile () =
  let sink, r = instrumented_run ~mode:`Pipelined ~n:200 () in
  let m = Obs.Sink.metrics sink in
  let v = Obs.Metrics.view m in
  check_int "issued = finished + errored"
    (Obs.Metrics.issued m)
    (Obs.Metrics.finished m + Obs.Metrics.errored m);
  check_int "finished matches runner" r.Core.Runner.txns
    (Obs.Metrics.finished m);
  check_int "beats counter matches runner" r.Core.Runner.beats
    (Obs.Metrics.beats m);
  let lat = hist "txn-latency-cycles" v in
  check_int "latency histogram total = finished counter"
    (Obs.Metrics.finished m) lat.Obs.Metrics.total;
  check_int "latency histogram mass is in the buckets" lat.Obs.Metrics.total
    (Array.fold_left ( + ) 0 lat.Obs.Metrics.counts);
  let occ = hist "request-queue-depth" v in
  check_int "occupancy histogram total = issued counter"
    (Obs.Metrics.issued m) occ.Obs.Metrics.total

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  at 0

let test_metrics_render () =
  let sink, _ = instrumented_run ~n:64 () in
  let text = Core.Report.metrics (Obs.Sink.metrics sink) in
  check_bool "text report lists the issue counter" true
    (contains ~needle:"txns-issued" text);
  check_bool "text report lists the latency histogram" true
    (contains ~needle:"txn-latency-cycles" text);
  (* The JSON snapshot parses back. *)
  let json = Obs.Json.to_string (Obs.Metrics.to_json (Obs.Sink.metrics sink)) in
  match Obs.Json.of_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics JSON does not parse: %s" e

(* --- Chrome trace export --- *)

let chrome_events sink =
  let json = Obs.Chrome.to_string sink in
  match Obs.Json.of_string json with
  | Error e -> Alcotest.failf "chrome JSON does not parse: %s" e
  | Ok doc -> (
    match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list_opt with
    | None -> Alcotest.fail "no traceEvents array"
    | Some evs -> evs)

let field name ev = Obs.Json.member name ev

let test_chrome_well_formed () =
  let sink, _ = instrumented_run ~mode:`Pipelined ~n:150 () in
  let evs = chrome_events sink in
  check_bool "trace has events" true (List.length evs > 0);
  List.iter
    (fun ev ->
      List.iter
        (fun key ->
          match field key ev with
          | Some _ -> ()
          | None ->
            Alcotest.failf "event missing %S: %s" key (Obs.Json.to_string ev))
        [ "pid"; "tid"; "ph"; "ts"; "name" ])
    evs;
  (* B/E spans balance per (pid, tid) track and never go negative. *)
  let depth = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let num key =
        Option.bind (field key ev) Obs.Json.number_opt
        |> Option.value ~default:(-1.0)
      in
      let ph =
        Option.bind (field "ph" ev) Obs.Json.string_opt
        |> Option.value ~default:"?"
      in
      let track = (num "pid", num "tid") in
      let d = try Hashtbl.find depth track with Not_found -> 0 in
      match ph with
      | "B" -> Hashtbl.replace depth track (d + 1)
      | "E" ->
        check_bool "E only closes an open B" true (d > 0);
        Hashtbl.replace depth track (d - 1)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun _ d -> check_int "all spans closed" 0 d)
    depth;
  (* Timestamps are sorted. *)
  let ts =
    List.filter_map (fun ev -> Option.bind (field "ts" ev) Obs.Json.number_opt) evs
  in
  check_bool "timestamps sorted" true (List.sort compare ts = ts)

let test_chrome_adaptive_windows () =
  let trace = Core.Workloads.mixed_phase_trace ~phase:64 ~sensitive_every:2 ~n:256 () in
  let sink = Obs.Sink.create () in
  let r =
    Core.Runner.run_adaptive ~mode:`Serial ~sink
      ~policy:Core.Experiments.adaptive_policy trace
  in
  check_bool "the stimulus actually switches levels" true
    (r.Core.Runner.switches > 0);
  let events = Obs.Sink.events sink in
  let count k =
    List.length (List.filter (fun (e : Obs.Event.t) -> e.kind = k) events)
  in
  let windows = List.length r.Core.Runner.splice.Hier.Splice.windows in
  check_int "one open per window" windows (count Obs.Event.Window_open);
  check_int "one close per window" windows (count Obs.Event.Window_close);
  check_int "one switch event per splice switch" r.Core.Runner.switches
    (count Obs.Event.Level_switch);
  (* Window closes carry the spliced energies: their sum is the run's. *)
  let close_pj =
    List.fold_left
      (fun acc (e : Obs.Event.t) ->
        if e.kind = Obs.Event.Window_close then acc +. e.value else acc)
      0.0 events
  in
  Alcotest.(check (float 1e-6)) "window closes sum to the spliced total"
    r.Core.Runner.bus_pj close_pj;
  (* Windows tile the spliced timeline: closes are monotone and the last
     one sits at the spliced end. *)
  let closes =
    List.filter (fun (e : Obs.Event.t) -> e.kind = Obs.Event.Window_close) events
  in
  ignore
    (List.fold_left
       (fun prev (e : Obs.Event.t) ->
         check_bool "closes monotone" true (e.cycle >= prev);
         e.cycle)
       0 closes);
  (match List.rev closes with
  | last :: _ -> check_int "last close at spliced end" r.Core.Runner.cycles last.cycle
  | [] -> Alcotest.fail "no closes");
  (* And the export stays parseable with the window track present. *)
  let evs = chrome_events sink in
  let on_level_track =
    List.filter
      (fun ev ->
        match Option.bind (field "tid" ev) Obs.Json.number_opt with
        | Some 1.0 -> true
        | _ -> false)
      evs
  in
  check_bool "level track populated" true (List.length on_level_track > windows)

(* --- attaching a sink does not change the simulation --- *)

let fingerprint (r : Core.Runner.result) =
  (r.cycles, r.txns, r.beats, r.errors, r.transitions, r.bus_pj, r.component_pj)

let test_bit_exact_with_sink () =
  let trace = Core.Workloads.table3_trace ~n:160 in
  List.iter
    (fun level ->
      let plain = Core.Runner.run_trace ~level ~mode:`Pipelined trace in
      let sink = Obs.Sink.create () in
      let instrumented =
        Core.Runner.run_trace ~level ~mode:`Pipelined ~sink trace
      in
      check_bool
        (Core.Level.to_string level ^ " bit-identical with sink")
        true
        (fingerprint plain = fingerprint instrumented))
    Core.Level.all

let test_bit_exact_adaptive () =
  let trace = Core.Workloads.mixed_phase_trace ~phase:64 ~sensitive_every:2 ~n:256 () in
  let policy = Core.Experiments.adaptive_policy in
  let plain = Core.Runner.run_adaptive ~mode:`Serial ~policy trace in
  let sink = Obs.Sink.create () in
  let instrumented = Core.Runner.run_adaptive ~mode:`Serial ~sink ~policy trace in
  check_bool "adaptive bit-identical with sink" true
    ( plain.Core.Runner.cycles = instrumented.Core.Runner.cycles
    && plain.Core.Runner.txns = instrumented.Core.Runner.txns
    && plain.Core.Runner.beats = instrumented.Core.Runner.beats
    && plain.Core.Runner.bus_pj = instrumented.Core.Runner.bus_pj
    && plain.Core.Runner.component_pj = instrumented.Core.Runner.component_pj
    && plain.Core.Runner.switches = instrumented.Core.Runner.switches )

(* --- the sink-less path stays allocation-free --- *)

(* The instrumentation contract: the [match t.sink] arms add no
   allocation — neither disabled (the [None] arm) nor enabled (recording
   writes into preallocated arrays).  Measured comparatively on a bare
   gate-level bus, because the bus's own per-cycle energy accounting
   allocates a constant amount regardless; the instrumented replays must
   allocate exactly as many minor-heap words as the plain one. *)
let replay_words ?sink () =
  let kernel = Sim.Kernel.create () in
  let slave =
    Ec.Slave.make
      ~cfg:(Ec.Slave_cfg.make ~name:"probe-ram" ~base:0x0 ~size:4096 ())
      ~read:(fun ~addr:_ ~width:_ -> 0)
      ~write:(fun ~addr:_ ~width:_ ~value:_ -> ())
  in
  let decoder = Ec.Decoder.create [ slave ] in
  let bus = Rtl.Bus.create ~kernel ~decoder ?sink () in
  let port = Rtl.Bus.port bus in
  let txns =
    Array.init 64 (fun i -> Ec.Txn.single_read ~id:(i land 3) (4 * (i land 255)))
  in
  Sim.Kernel.run kernel ~cycles:64;
  let w0 = Gc.minor_words () in
  Array.iter
    (fun txn ->
      check_bool "serial submit accepted" true (port.Ec.Port.try_submit txn);
      while not (Ec.Port.completed port txn.Ec.Txn.id) do
        Sim.Kernel.step kernel
      done;
      port.Ec.Port.retire txn.Ec.Txn.id)
    txns;
  Sim.Kernel.run kernel ~cycles:256;
  Gc.minor_words () -. w0

let test_sinkless_no_alloc () =
  let plain = replay_words () in
  let disabled = replay_words () in
  check_bool "plain replay allocation is deterministic" true (plain = disabled);
  let sink = Obs.Sink.create () in
  let enabled = replay_words ~sink () in
  if enabled > plain then
    Alcotest.failf "sink recording allocates %.0f extra words over %.0f"
      (enabled -. plain) plain

(* --- monitor rejected vs metrics rejected --- *)

let test_monitor_rejected () =
  let sink = Obs.Sink.create () in
  let system = Core.System.create ~level:Core.Level.L1 ~sink () in
  let kernel = Core.System.kernel system in
  let monitor = Soc.Monitor.create ~kernel (Core.System.port system) in
  (* Pipelined issue against the 4+4+4 outstanding limits congests. *)
  let trace = Core.Workloads.table3_trace ~n:300 in
  let master =
    Soc.Trace_master.create ~kernel ~port:(Soc.Monitor.port monitor)
      ~mode:`Pipelined trace
  in
  ignore (Soc.Trace_master.run master ~kernel ());
  check_bool "congestion actually happened" true (Soc.Monitor.rejected monitor > 0);
  check_int "monitor rejected = metrics rejected"
    (Obs.Metrics.rejected (Obs.Sink.metrics sink))
    (Soc.Monitor.rejected monitor);
  check_int "monitor accepted = metrics issued"
    (Obs.Metrics.issued (Obs.Sink.metrics sink))
    (Soc.Monitor.count monitor)

(* --- profile JSONL --- *)

let test_profile_jsonl () =
  let p = Power.Profile.create () in
  List.iter (Power.Profile.push p) [ 1.5; 0.0; 42.25 ];
  let lines = Power.Profile.to_jsonl_lines p in
  check_int "one line per cycle" (Power.Profile.length p) (List.length lines);
  List.iteri
    (fun i line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "line %d does not parse: %s" i e
      | Ok doc ->
        let num key =
          Option.bind (Obs.Json.member key doc) Obs.Json.number_opt
        in
        Alcotest.(check (option (float 1e-9)))
          "cycle field" (Some (float_of_int i)) (num "cycle");
        Alcotest.(check (option (float 1e-9)))
          "pj field"
          (Some (Power.Profile.get p i))
          (num "pj"))
    lines

(* --- ring overflow --- *)

let test_ring_overflow () =
  let sink = Obs.Sink.create ~capacity:16 () in
  let trace = Core.Workloads.table3_trace ~n:64 in
  let r = Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial ~sink trace in
  check_int "ring holds its capacity" 16 (Obs.Sink.length sink);
  check_bool "overflow counted" true (Obs.Sink.dropped sink > 0);
  (* Metrics keep aggregating past the ring. *)
  check_int "metrics unaffected by the ring" r.Core.Runner.txns
    (Obs.Metrics.finished (Obs.Sink.metrics sink));
  (* And the export of a truncated ring is still well-formed. *)
  ignore (chrome_events sink)

let suite =
  [
    Alcotest.test_case "event ordering per level" `Quick test_event_ordering;
    QCheck_alcotest.to_alcotest prop_event_ordering;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "metrics reconcile with the run" `Quick
      test_metrics_reconcile;
    Alcotest.test_case "metrics render (text and JSON)" `Quick
      test_metrics_render;
    Alcotest.test_case "chrome trace well-formed" `Quick test_chrome_well_formed;
    Alcotest.test_case "chrome adaptive window track" `Quick
      test_chrome_adaptive_windows;
    Alcotest.test_case "bit-exact with sink (pure levels)" `Quick
      test_bit_exact_with_sink;
    Alcotest.test_case "bit-exact with sink (adaptive)" `Quick
      test_bit_exact_adaptive;
    Alcotest.test_case "instrumentation is allocation-free" `Quick
      test_sinkless_no_alloc;
    Alcotest.test_case "monitor rejected = metrics rejected" `Quick
      test_monitor_rejected;
    Alcotest.test_case "profile JSONL lines" `Quick test_profile_jsonl;
    Alcotest.test_case "event ring overflow" `Quick test_ring_overflow;
  ]
