(* The adaptive mixed-level engine: policy decisions, energy splicing,
   switch-point handoff, and the degenerate-policy equivalences that pin
   run_adaptive to the pure runs. *)

module Gen = QCheck.Gen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let obs ?(addr = 0) ?(cycle = 0) ?(txns_per_kcycle = 0.0) ?(pj_per_cycle = 0.0)
    txn_index =
  { Hier.Policy.txn_index; addr; cycle; txns_per_kcycle; pj_per_cycle }

(* --- policy --- *)

let test_policy_constant () =
  let p = Hier.Policy.constant Hier.Level.L2 in
  List.iter
    (fun i -> check_string "constant" "TL layer 2"
        (Hier.Level.to_string (Hier.Policy.decide p (obs i))))
    [ 0; 1; 1000 ]

let test_policy_script () =
  let p = Hier.Policy.script [ (3, Hier.Level.L2); (2, Hier.Level.L1) ] in
  let at i = Hier.Policy.decide p (obs i) in
  check_string "first segment" "TL layer 2" (Hier.Level.to_string (at 0));
  check_string "segment edge" "TL layer 2" (Hier.Level.to_string (at 2));
  check_string "second segment" "TL layer 1" (Hier.Level.to_string (at 3));
  (* Past the script end the last level holds. *)
  check_string "held" "TL layer 1" (Hier.Level.to_string (at 99));
  Alcotest.check_raises "empty script"
    (Invalid_argument "Hier.Policy.script: empty script") (fun () ->
      ignore (Hier.Policy.script []))

let test_policy_triggered () =
  let p =
    Hier.Policy.triggered ~base:Hier.Level.L2
      [
        Hier.Policy.Addr_range { lo = 0x100; hi = 0x200; level = Hier.Level.L1 };
        Hier.Policy.Energy_rate_above { pj_per_cycle = 5.0; level = Hier.Level.Rtl };
      ]
  in
  let level o = Hier.Level.to_string (Hier.Policy.decide p o) in
  check_string "base" "TL layer 2" (level (obs ~addr:0x300 0));
  check_string "address trigger" "TL layer 1" (level (obs ~addr:0x180 0));
  check_string "rate trigger" "gate-level" (level (obs ~addr:0x300 ~pj_per_cycle:9.0 0));
  (* First matching trigger wins. *)
  check_string "priority" "TL layer 1" (level (obs ~addr:0x180 ~pj_per_cycle:9.0 0));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Hier.Policy.triggered: max_window < min_window")
    (fun () ->
      ignore (Hier.Policy.triggered ~min_window:4 ~max_window:2
                ~base:Hier.Level.L2 []))

(* --- splice --- *)

let seg ?profile level cycles txns bus_pj =
  { Hier.Splice.level; cycles; txns; beats = txns; errors = 0; bus_pj;
    component_pj = 0.0; profile }

let test_splice_totals () =
  let s =
    Hier.Splice.splice
      [
        seg Hier.Level.L2 100 10 50.0;
        seg Hier.Level.L1 40 4 20.0;
        seg Hier.Level.L2 60 6 30.0;
      ]
  in
  check_int "windows" 3 (List.length s.Hier.Splice.windows);
  check_int "switches" 2 s.Hier.Splice.switches;
  check_int "cycles" 200 s.Hier.Splice.total_cycles;
  check_int "txns" 20 s.Hier.Splice.total_txns;
  Alcotest.(check (float 1e-9)) "energy" 100.0 s.Hier.Splice.total_bus_pj;
  (* Budget: L2 windows at 25%, the L1 window at 12%. *)
  Alcotest.(check (float 1e-9)) "bound"
    ((50.0 +. 30.0) *. 0.25 +. 20.0 *. 0.12)
    s.Hier.Splice.error_bound_pj;
  let w = List.nth s.Hier.Splice.windows 1 in
  check_int "start cycle" 100 w.Hier.Splice.start_cycle;
  check_string "provenance" "cycle-accurate"
    (Hier.Splice.provenance_string w.Hier.Splice.provenance);
  let err_pct, within = Hier.Splice.error_vs_reference s ~reference_pj:110.0 in
  check_bool "within budget" true within;
  Alcotest.(check (float 1e-6)) "error pct" (-9.090909) err_pct;
  let _, outside = Hier.Splice.error_vs_reference s ~reference_pj:200.0 in
  check_bool "outside budget" false outside

let test_splice_profile () =
  let recorded = Power.Profile.create () in
  List.iter (Power.Profile.push recorded) [ 1.0; 2.0; 3.0 ];
  let s =
    Hier.Splice.splice
      [ seg ~profile:recorded Hier.Level.L1 4 1 6.0; seg Hier.Level.L2 5 1 10.0 ]
  in
  let p = Hier.Splice.profile s in
  check_int "profile spans the spliced timeline" 9 (Power.Profile.length p);
  (* Recorded cycles verbatim (padded), lump spread uniformly. *)
  Alcotest.(check (float 1e-9)) "recorded cycle" 2.0 (Power.Profile.get p 1);
  Alcotest.(check (float 1e-9)) "padding" 0.0 (Power.Profile.get p 3);
  Alcotest.(check (float 1e-9)) "lump spread" 2.0 (Power.Profile.get p 7);
  Alcotest.(check (float 1e-9)) "profile total = spliced energy" 16.0
    (Power.Profile.total p)

(* --- engine over the real systems --- *)

let small_trace = Core.Workloads.mixed_phase_trace ~phase:32 ~n:256 ()

let run_pure level =
  Core.Runner.run_trace ~level ~init:Core.Runner.fill_memories small_trace

let run_const level =
  Core.Runner.run_adaptive ~init:Core.Runner.fill_memories
    ~policy:(Hier.Policy.constant level) small_trace

let check_run_equal name (pure : Core.Runner.result)
    (adaptive : Core.Runner.adaptive_run) =
  check_int (name ^ " cycles") pure.Core.Runner.cycles adaptive.Core.Runner.cycles;
  check_int (name ^ " txns") pure.Core.Runner.txns adaptive.Core.Runner.txns;
  check_int (name ^ " beats") pure.Core.Runner.beats adaptive.Core.Runner.beats;
  check_int (name ^ " errors") pure.Core.Runner.errors adaptive.Core.Runner.errors;
  (* Bit-for-bit: the degenerate window runs exactly the pure code path. *)
  check_bool (name ^ " bus pj") true
    (pure.Core.Runner.bus_pj = adaptive.Core.Runner.bus_pj);
  check_bool (name ^ " component pj") true
    (pure.Core.Runner.component_pj = adaptive.Core.Runner.component_pj);
  check_int (name ^ " single window") 1
    (List.length adaptive.Core.Runner.splice.Hier.Splice.windows);
  check_int (name ^ " no switches") 0 adaptive.Core.Runner.switches

let test_degenerate_l1 () =
  check_run_equal "l1" (run_pure Core.Level.L1) (run_const Hier.Level.L1)

let test_degenerate_l2 () =
  check_run_equal "l2" (run_pure Core.Level.L2) (run_const Hier.Level.L2)

let test_handoff_carries_memory () =
  (* A value written during the first (layer 1) window must be visible in
     the systems of every later window: the quiesced switch hands the
     memory contents across. *)
  let addr = Soc.Platform.Map.ram_base + 0x40 in
  let value = 0x5EC0DE in
  let ids = ref 0 in
  let item txn = Ec.Trace.item txn in
  let fresh () = incr ids; !ids in
  let trace =
    item (Ec.Txn.single_write ~id:(fresh ()) addr ~value)
    :: List.init 40 (fun _ ->
           item (Ec.Txn.single_read ~id:(fresh ()) addr))
  in
  let r =
    Core.Runner.run_adaptive
      ~policy:(Hier.Policy.script [ (8, Hier.Level.L1); (8, Hier.Level.L2) ])
      trace
  in
  check_int "two windows" 2 (List.length r.Core.Runner.splice.Hier.Splice.windows);
  check_int "one switch" 1 r.Core.Runner.switches;
  check_int "no errors" 0 r.Core.Runner.errors;
  match r.Core.Runner.final_system with
  | None -> Alcotest.fail "no final system"
  | Some system ->
    let ram = Soc.Platform.ram (Core.System.platform system) in
    check_int "written value visible after the switch" value
      (Soc.Memory.peek32 ram ~addr)

let test_adaptive_policy_refines_eeprom () =
  (* The experiment's policy: base L2, L1 while traffic hits the EEPROM.
     The mixed-phase workload has EEPROM phases, so both levels appear. *)
  let trace = Core.Workloads.mixed_phase_trace ~phase:32 ~sensitive_every:4 ~n:256 () in
  let r =
    Core.Runner.run_adaptive ~init:Core.Runner.fill_memories
      ~policy:Core.Experiments.adaptive_policy trace
  in
  let levels =
    List.map (fun w -> w.Hier.Splice.level) r.Core.Runner.splice.Hier.Splice.windows
  in
  check_bool "has L1 windows" true (List.mem Hier.Level.L1 levels);
  check_bool "has L2 windows" true (List.mem Hier.Level.L2 levels);
  check_bool "switches" true (r.Core.Runner.switches > 0);
  check_int "all txns accounted" 256 r.Core.Runner.txns

(* --- properties --- *)

let gen_script =
  let open Gen in
  let gen_level =
    frequency
      [ (4, return Hier.Level.L1); (4, return Hier.Level.L2);
        (1, return Hier.Level.Rtl) ]
  in
  list_size (int_range 1 6)
    (let* n = int_range 1 60 in
     let* level = gen_level in
     return (n, level))

let arb_script =
  QCheck.make gen_script ~print:(fun s ->
      Hier.Policy.to_string (Hier.Policy.script s))

let prop_script_splice_sums =
  QCheck.Test.make ~name:"spliced totals = sum of window stats (any script)"
    ~count:12 arb_script (fun script ->
      let trace = Core.Workloads.mixed_phase_trace ~phase:16 ~n:96 () in
      let r =
        Core.Runner.run_adaptive ~init:Core.Runner.fill_memories
          ~policy:(Hier.Policy.script script) trace
      in
      let s = r.Core.Runner.splice in
      let windows = s.Hier.Splice.windows in
      let sum f = List.fold_left (fun acc w -> acc + f w) 0 windows in
      let sumf f = List.fold_left (fun acc w -> acc +. f w) 0.0 windows in
      sum (fun w -> w.Hier.Splice.txns) = 96
      && s.Hier.Splice.total_txns = 96
      && s.Hier.Splice.total_cycles = sum (fun w -> w.Hier.Splice.cycles)
      && Float.abs
           (s.Hier.Splice.total_bus_pj -. sumf (fun w -> w.Hier.Splice.bus_pj))
         < 1e-9
      && r.Core.Runner.errors = 0)

let prop_constant_equals_pure =
  QCheck.Test.make ~name:"constant policy = pure run (both TL levels)"
    ~count:8
    (QCheck.make
       Gen.(pair (oneofl [ Hier.Level.L1; Hier.Level.L2 ]) (int_range 32 160))
       ~print:(fun (l, n) -> Printf.sprintf "%s n=%d" (Hier.Level.to_string l) n))
    (fun (level, n) ->
      let trace = Core.Workloads.mixed_phase_trace ~phase:16 ~n () in
      let pure =
        Core.Runner.run_trace ~level ~init:Core.Runner.fill_memories trace
      in
      let a =
        Core.Runner.run_adaptive ~init:Core.Runner.fill_memories
          ~policy:(Hier.Policy.constant level) trace
      in
      pure.Core.Runner.cycles = a.Core.Runner.cycles
      && pure.Core.Runner.txns = a.Core.Runner.txns
      && pure.Core.Runner.beats = a.Core.Runner.beats
      && pure.Core.Runner.bus_pj = a.Core.Runner.bus_pj
      && pure.Core.Runner.component_pj = a.Core.Runner.component_pj)

let suite =
  [
    Alcotest.test_case "policy constant" `Quick test_policy_constant;
    Alcotest.test_case "policy script" `Quick test_policy_script;
    Alcotest.test_case "policy triggered" `Quick test_policy_triggered;
    Alcotest.test_case "splice totals" `Quick test_splice_totals;
    Alcotest.test_case "splice profile" `Quick test_splice_profile;
    Alcotest.test_case "degenerate L1 = pure L1" `Quick test_degenerate_l1;
    Alcotest.test_case "degenerate L2 = pure L2" `Quick test_degenerate_l2;
    Alcotest.test_case "handoff carries memory" `Quick test_handoff_carries_memory;
    Alcotest.test_case "triggered policy refines EEPROM windows" `Quick
      test_adaptive_policy_refines_eeprom;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_script_splice_sums; prop_constant_equals_pure ]
