(* The simulation service: framing, request validation, wire-level
   bit-exactness against direct in-process runs, backpressure, and
   graceful drain (DESIGN.md section 15).

   Every server here listens on a throwaway Unix socket (and optionally
   an ephemeral TCP port) and runs [serve] on a helper thread; the test
   body plays client, then [drain] + join tears the daemon down. *)

module P = Serve.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let temp_socket () =
  let path = Filename.temp_file "serve-test" ".sock" in
  (* temp_file creates a regular file; the server only unlinks stale
     *sockets*, so clear the way ourselves. *)
  Unix.unlink path;
  path

let with_server ?(domains = 2) ?(queue_depth = 64) ?max_frame ?tcp_port
    ?handle_signals f =
  let path = temp_socket () in
  let server =
    Serve.Server.create ~unix_path:path ?tcp_port ~domains ~queue_depth
      ?max_frame ?handle_signals ()
  in
  let thread = Thread.create Serve.Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.drain server;
      Thread.join thread;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () -> f server path)

let with_client path f =
  let c = Serve.Client.connect (`Unix path) in
  Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)

let frames_exn = function
  | Ok frames -> frames
  | Error e -> Alcotest.failf "client stream error: %s" e

let find_result frames =
  List.find_map (function P.Result r -> Some r | _ -> None) frames

let find_error frames =
  List.find_map (function P.Error e -> Some e | _ -> None) frames

let rows_of frames =
  List.filter_map (function P.Row (s, r) -> Some (s, r) | _ -> None) frames

let points_of frames =
  List.filter_map (function P.Point p -> Some p | _ -> None) frames

let has_done frames =
  List.exists (function P.Done _ -> true | _ -> false) frames

(* --- framing --- *)

let test_framing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let payloads =
        [ ""; "x"; "null"; String.make 4096 'j'; String.make 100_000 '\xff' ]
      in
      List.iter (fun p -> Serve.Framing.write a p) payloads;
      List.iter
        (fun expected ->
          match Serve.Framing.read b with
          | Serve.Framing.Frame got ->
            check_bool "payload round-trips" true (String.equal expected got)
          | _ -> Alcotest.fail "expected a frame")
        payloads;
      (* An oversized frame is rejected by announced length, and after a
         discard the stream is usable again. *)
      Serve.Framing.write a (String.make 2048 'z');
      Serve.Framing.write a "after";
      (match Serve.Framing.read ~max_frame:1024 b with
      | Serve.Framing.Oversized n ->
        check_int "announced length" 2048 n;
        check_bool "resync discards the body" true (Serve.Framing.discard b 2048)
      | _ -> Alcotest.fail "expected oversized");
      (match Serve.Framing.read ~max_frame:1024 b with
      | Serve.Framing.Frame got -> check_bool "next frame intact" true (got = "after")
      | _ -> Alcotest.fail "expected the follow-up frame");
      (* A header cut short is Truncated, a clean EOF is Closed. *)
      let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      ignore (Unix.write_substring c "\000\000" 0 2);
      Unix.close c;
      (match Serve.Framing.read d with
      | Serve.Framing.Truncated -> ()
      | _ -> Alcotest.fail "expected truncated");
      (match Serve.Framing.read d with
      | Serve.Framing.Closed -> ()
      | _ -> Alcotest.fail "expected closed");
      Unix.close d)

let test_framing_stop () =
  (* A receive timeout plus [stop] makes a read abandonable mid-frame:
     this is what keeps one stalled peer from pinning a server reader
     (and with it, graceful drain) forever. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.02;
      (* Nothing sent at all: the idle read gives up on the first expiry. *)
      (match Serve.Framing.read ~stop:(fun () -> true) b with
      | Serve.Framing.Stopped -> ()
      | _ -> Alcotest.fail "expected stopped on an idle read");
      (* A half-sent frame: header promises 100 bytes, 5 arrive, the
         peer stalls.  The read must still honour [stop]. *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 100l;
      ignore (Unix.write a header 0 4);
      ignore (Unix.write_substring a "stall" 0 5);
      let polls = ref 0 in
      (match
         Serve.Framing.read
           ~stop:(fun () ->
             incr polls;
             !polls >= 3)
           b
       with
      | Serve.Framing.Stopped -> ()
      | _ -> Alcotest.fail "expected stopped mid-frame");
      check_bool "stop was consulted on expiries" true (!polls >= 3))

(* --- request codec --- *)

let test_request_codec () =
  let reqs =
    [
      P.Run
        {
          P.workload = P.Table3 48;
          level = Core.Level.L2;
          mode = `Pipelined;
          estimate = true;
          profile = true;
          compiled = false;
        };
      P.Replay
        {
          P.workload = P.Mixed_phase 100;
          level = Core.Level.L1;
          mode = `Serial;
          scales = [ 0.5; 1.0; 2.0 ];
          fabric = None;
        };
      P.Replay
        {
          P.workload = P.Table3 48;
          level = Core.Level.L2;
          mode = `Pipelined;
          scales = [ 1.0; 1.5 ];
          fabric =
            Some
              {
                P.fab_policy = Ec.Arbiter.Weighted [| 4; 2; 1 |];
                fab_topology = Core.Contention.Bridged;
              };
        };
      P.Explore
        {
          P.applets = [ "fib" ];
          configs = [ "w16-dedicated" ];
          level = Core.Level.L1;
          adaptive = false;
        };
      P.Stats;
      P.Metrics;
      P.Subscribe { P.streams = [ `Metrics; `Trace; `Energy ]; interval_ms = 50 };
      P.Unsubscribe;
      P.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let doc = P.request_to_json ~id:(Obs.Json.Int 3) req in
      match P.request_of_json doc with
      | Ok req' -> check_bool "request round-trips" true (req = req')
      | Error (_, msg) -> Alcotest.failf "decode failed: %s" msg)
    reqs;
  (* Validation rejects what the scheduler could not honour. *)
  let rejects json =
    match P.request_of_json json with
    | Ok _ -> Alcotest.fail "expected a validation error"
    | Error (code, _) -> code
  in
  let open Obs.Json in
  check_bool "unknown type" true
    (rejects (Obj [ ("type", String "frobnicate") ]) = P.Unknown_type);
  check_bool "missing type" true
    (rejects (Obj [ ("id", Int 1) ]) = P.Bad_request);
  check_bool "rtl replay refused" true
    (rejects
       (Obj
          [
            ("type", String "replay");
            ("workload", Obj [ ("kind", String "table3"); ("n", Int 8) ]);
            ("level", String "rtl");
          ])
    = P.Bad_request);
  check_bool "malformed inline trace" true
    (rejects
       (Obj
          [
            ("type", String "run");
            ( "workload",
              Obj
                [
                  ("kind", String "inline");
                  ("lines", List [ String "not a transaction" ]);
                ] );
          ])
    = P.Bad_request);
  (* A negative gap parses field-by-field but raises Invalid_argument
     (not Failure) in Ec.Trace.item — validation must catch that too,
     not let it escape into the reader thread. *)
  check_bool "negative-gap inline trace" true
    (rejects
       (Obj
          [
            ("type", String "run");
            ( "workload",
              Obj
                [
                  ("kind", String "inline");
                  ("lines", List [ String "-1 RI 8 0x0 1" ]);
                ] );
          ])
    = P.Bad_request)

(* --- malformed wire input --- *)

let test_malformed_frames () =
  with_server ~domains:1 ~max_frame:4096 (fun _server path ->
      (* Not JSON at all: a structured error, id null, conn survives. *)
      with_client path (fun c ->
          Serve.Framing.write (Serve.Client.fd c) "{definitely not json";
          (match Serve.Client.read_typed c with
          | Ok (id, P.Error e) ->
            check_bool "id is null" true (id = Obs.Json.Null);
            check_bool "code bad_json" true (e.P.code = P.Bad_json)
          | _ -> Alcotest.fail "expected a bad_json error frame");
          (* Same connection still serves requests. *)
          let frames = frames_exn (Serve.Client.request c P.Stats) in
          check_bool "stats after bad json" true (has_done frames));
      (* Unknown request type: error echoes the id. *)
      with_client path (fun c ->
          Serve.Client.send_json c
            (Obs.Json.Obj
               [ ("type", Obs.Json.String "frobnicate");
                 ("id", Obs.Json.Int 7) ]);
          match Serve.Client.read_typed c with
          | Ok (id, P.Error e) ->
            check_bool "id echoed" true (id = Obs.Json.Int 7);
            check_bool "code unknown_type" true (e.P.code = P.Unknown_type)
          | _ -> Alcotest.fail "expected an unknown_type error frame");
      (* Oversized: rejected by announced length, conn survives. *)
      with_client path (fun c ->
          Serve.Framing.write (Serve.Client.fd c) (String.make 8192 ' ');
          (match Serve.Client.read_typed c with
          | Ok (_, P.Error e) ->
            check_bool "code oversized" true (e.P.code = P.Oversized)
          | _ -> Alcotest.fail "expected an oversized error frame");
          let frames = frames_exn (Serve.Client.request c P.Stats) in
          check_bool "stats after oversized" true (has_done frames));
      (* A trace line whose gap is negative blows up with
         Invalid_argument, not Failure, inside validation: the reader
         must answer bad_request and survive, not die with the
         exception and orphan the connection. *)
      with_client path (fun c ->
          Serve.Client.send_json c
            (Obs.Json.Obj
               [
                 ("type", Obs.Json.String "run");
                 ("id", Obs.Json.Int 11);
                 ( "workload",
                   Obs.Json.Obj
                     [
                       ("kind", Obs.Json.String "inline");
                       ( "lines",
                         Obs.Json.List [ Obs.Json.String "-1 RI 8 0x0 1" ] );
                     ] );
               ]);
          (match Serve.Client.read_typed c with
          | Ok (id, P.Error e) ->
            check_bool "id echoed" true (id = Obs.Json.Int 11);
            check_bool "code bad_request" true (e.P.code = P.Bad_request)
          | _ -> Alcotest.fail "expected a bad_request error frame");
          let frames = frames_exn (Serve.Client.request c P.Stats) in
          check_bool "stats after negative-gap trace" true (has_done frames));
      (* Truncated: the stream dies mid-frame; the server answers with a
         bad_frame error before closing its side. *)
      with_client path (fun c ->
          let fd = Serve.Client.fd c in
          let header = Bytes.create 4 in
          Bytes.set_int32_be header 0 100l;
          ignore (Unix.write fd header 0 4);
          ignore (Unix.write_substring fd "short" 0 5);
          Unix.shutdown fd Unix.SHUTDOWN_SEND;
          match Serve.Client.read_typed c with
          | Ok (_, P.Error e) ->
            check_bool "code bad_frame" true (e.P.code = P.Bad_frame)
          | _ -> Alcotest.fail "expected a bad_frame error frame"))

(* --- stream alignment across a failed job --- *)

let test_failed_error_keeps_stream_aligned () =
  (* The server answers a job that raised with error{failed} AND the
     job's done summary (run_job).  collect must treat only
     rejection-class errors as terminal: if it stopped at the failed
     error, the unread done would surface as the first frame of the
     next response on the same connection, desyncing every request
     after it.  A fake server pins the exact frame sequence. *)
  let path = temp_socket () in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 1;
  let client = Serve.Client.connect (`Unix path) in
  let served, _ = Unix.accept listener in
  Fun.protect
    ~finally:(fun () ->
      Serve.Client.close client;
      (try Unix.close served with Unix.Unix_error _ -> ());
      Unix.close listener;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      let send ~id frame =
        Serve.Framing.write_json served
          (P.frame_to_json ~id:(Obs.Json.Int id) frame)
      in
      let pool =
        { P.session_hits = 0; session_builds = 0; plan_hits = 0;
          plan_builds = 0 }
      in
      (* Response 1: a job that failed mid-execution... *)
      send ~id:1 (P.Accepted 1);
      send ~id:1
        (P.Error { P.code = P.Failed; message = "boom"; retry_after_ms = None });
      send ~id:1
        (P.Done
           { P.frames = 2; latency_ms = 1.0; done_worker = 0; done_pool = pool });
      (* ... response 2: a plain rejection, terminal by itself. *)
      send ~id:2
        (P.Error
           { P.code = P.Busy; message = "queue full"; retry_after_ms = Some 10 });
      (match Serve.Client.collect client with
      | Ok [ P.Accepted _; P.Error e; P.Done _ ] ->
        check_bool "failed error inside the stream" true (e.P.code = P.Failed)
      | Ok frames ->
        Alcotest.failf "response 1: unexpected %d-frame stream"
          (List.length frames)
      | Error e -> Alcotest.failf "response 1: %s" e);
      match Serve.Client.collect client with
      | Ok [ P.Error e ] ->
        check_bool "rejection terminal by itself" true (e.P.code = P.Busy)
      | Ok frames ->
        Alcotest.failf "response 2: %d frames — stream desynced"
          (List.length frames)
      | Error e -> Alcotest.failf "response 2: %s" e)

(* --- bit-exactness over the wire --- *)

let direct_run ~level ~mode workload =
  Core.Runner.run_trace ~level ~mode ~estimate:true
    ~init:Core.Runner.fill_memories
    (P.trace_of_workload workload)

let check_result_matches name (direct : Core.Runner.result) (wire : P.result_body)
    =
  check_bool (name ^ ": level") true (wire.P.level = direct.Core.Runner.level);
  check_int (name ^ ": cycles") direct.Core.Runner.cycles wire.P.cycles;
  check_int (name ^ ": txns") direct.Core.Runner.txns wire.P.txns;
  check_int (name ^ ": beats") direct.Core.Runner.beats wire.P.beats;
  check_int (name ^ ": errors") direct.Core.Runner.errors wire.P.errors;
  check_int (name ^ ": transitions") direct.Core.Runner.transitions
    wire.P.transitions;
  check_bool (name ^ ": bus_pj bit-identical") true
    (wire.P.bus_pj = direct.Core.Runner.bus_pj);
  check_bool (name ^ ": component_pj bit-identical") true
    (wire.P.component_pj = direct.Core.Runner.component_pj)

let test_run_bit_exact () =
  with_server (fun _server path ->
      with_client path (fun c ->
          List.iter
            (fun (level, mode, compiled, workload) ->
              let frames =
                frames_exn
                  (Serve.Client.request c
                     (P.Run
                        { P.workload; level; mode; estimate = true;
                          profile = false; compiled }))
              in
              match find_result frames with
              | None -> Alcotest.fail "no result frame"
              | Some wire ->
                check_result_matches
                  (Core.Level.to_string level)
                  (direct_run ~level ~mode workload)
                  wire)
            [
              (Core.Level.L1, `Pipelined, true, P.Table3 64);
              (Core.Level.L2, `Serial, true, P.Mixed_phase 120);
              (Core.Level.L1, `Serial, false, P.Table3 32);
              (Core.Level.Rtl, `Serial, false, P.Table3 16);
            ]))

let test_profile_stream () =
  with_server (fun _server path ->
      with_client path (fun c ->
          let frames =
            frames_exn
              (Serve.Client.request c
                 (P.Run
                    { P.workload = P.Table3 48; level = Core.Level.L1;
                      mode = `Serial; estimate = true; profile = true;
                      compiled = false }))
          in
          let chunks =
            List.filter_map
              (function P.Energy (s, lines) -> Some (s, lines) | _ -> None)
              frames
          in
          check_bool "profile streamed" true (chunks <> []);
          List.iteri
            (fun i (seq, _) -> check_int "chunk sequence" i seq)
            chunks;
          let direct =
            Core.Runner.run_trace ~level:Core.Level.L1 ~mode:`Serial
              ~estimate:true ~record_profile:true
              ~init:Core.Runner.fill_memories
              (P.trace_of_workload (P.Table3 48))
          in
          let direct_lines =
            match direct.Core.Runner.profile with
            | Some p -> Power.Profile.to_jsonl_lines p
            | None -> Alcotest.fail "direct run has no profile"
          in
          let wire_lines = List.concat_map snd chunks in
          check_int "jsonl line count"
            (List.length direct_lines)
            (List.length wire_lines);
          check_bool "jsonl lines identical" true
            (List.for_all2 String.equal direct_lines wire_lines)))

let test_replay_bit_exact () =
  with_server (fun _server path ->
      with_client path (fun c ->
          let scales = [ 0.5; 1.0; 2.0 ] in
          let workload = P.Table3 40 in
          let level = Core.Level.L1 and mode = `Pipelined in
          let frames =
            frames_exn
              (Serve.Client.request c
                 (P.Replay { P.workload; level; mode; scales; fabric = None }))
          in
          let wire = points_of frames in
          let plan =
            Core.Runner.compile_trace ~level ~mode
              ~init:Core.Runner.fill_memories
              (P.trace_of_workload workload)
          in
          let points =
            List.map
              (fun s ->
                {
                  Compile.Eval.table =
                    Power.Characterization.scale Power.Characterization.default
                      s;
                  l2_params = None;
                })
              scales
          in
          let direct = Core.Runner.replay_multi ~points plan in
          check_int "one point per scale" (List.length scales)
            (List.length wire);
          List.iteri
            (fun i ((scale, (d : Core.Runner.result)), (w : P.point_body)) ->
              check_int "seq" i w.P.point_seq;
              check_bool "scale" true (w.P.scale = scale);
              check_int "cycles" d.Core.Runner.cycles w.P.point_cycles;
              check_int "txns" d.Core.Runner.txns w.P.point_txns;
              check_int "transitions" d.Core.Runner.transitions
                w.P.point_transitions;
              check_bool "bus_pj bit-identical" true
                (w.P.point_bus_pj = d.Core.Runner.bus_pj))
            (List.combine (List.combine scales direct) wire)))

let test_fabric_replay_bit_exact () =
  with_server (fun _server path ->
      with_client path (fun c ->
          let scales = [ 0.5; 1.0; 2.0 ] in
          let workload = P.Table3 40 in
          let level = Core.Level.L2 and mode = `Pipelined in
          let policy = Ec.Arbiter.Round_robin
          and topology = Core.Contention.Bridged in
          let frames =
            frames_exn
              (Serve.Client.request c
                 (P.Replay
                    { P.workload; level; mode; scales;
                      fabric =
                        Some { P.fab_policy = policy; fab_topology = topology }
                    }))
          in
          let wire = points_of frames in
          let trace = P.trace_of_workload workload in
          let masters =
            (Core.Contention.Cpu, trace)
            :: List.filter
                 (fun (k, _) -> k <> Core.Contention.Cpu)
                 (Core.Contention.default_masters
                    ~n:(max 64 (Ec.Trace.total_txns trace))
                    topology)
          in
          let plan =
            Core.Contention.compile ~level ~policy ~topology ~mode masters
          in
          let points =
            List.map
              (fun s ->
                {
                  Compile.Eval.table =
                    Power.Characterization.scale Power.Characterization.default
                      s;
                  l2_params = None;
                })
              scales
          in
          let direct = Compile.Eval.eval_fabric_multi plan ~points in
          check_int "one point per scale" (List.length scales)
            (List.length wire);
          List.iteri
            (fun i
                 ( (scale, (d : Compile.Eval.fabric_outcome)),
                   (w : P.point_body) ) ->
              check_int "seq" i w.P.point_seq;
              check_bool "scale" true (w.P.scale = scale);
              check_int "cycles" plan.Compile.Plan.f_meta.Compile.Plan.f_cycles
                w.P.point_cycles;
              check_bool "fabric_pj bit-identical" true
                (w.P.point_bus_pj = d.Compile.Eval.fabric_pj);
              match w.P.point_buckets with
              | None -> Alcotest.fail "fabric point frame without buckets"
              | Some buckets ->
                check_int "one bucket per master"
                  plan.Compile.Plan.f_meta.Compile.Plan.f_masters
                  (List.length buckets);
                check_bool "buckets bit-identical" true
                  (List.for_all2
                     (fun (a : float) b -> a = b)
                     buckets
                     (Array.to_list d.Compile.Eval.buckets));
                check_bool "buckets sum to the frame energy" true
                  (List.fold_left ( +. ) 0.0 buckets = w.P.point_bus_pj))
            (List.combine (List.combine scales direct) wire)))

let test_explore_bit_exact () =
  with_server (fun _server path ->
      with_client path (fun c ->
          let applet =
            List.find (fun a -> a.Jcvm.Applets.name = "fib") Jcvm.Applets.all
          in
          (* Fixed level over the standard grid... *)
          let frames =
            frames_exn
              (Serve.Client.request c
                 (P.Explore
                    { P.applets = [ "fib" ]; configs = [];
                      level = Core.Level.L2; adaptive = false }))
          in
          let wire = rows_of frames in
          check_int "one row per standard config"
            (List.length Jcvm.Configs.standard)
            (List.length wire);
          List.iteri
            (fun i (config, (seq, row)) ->
              check_int "grid order" i seq;
              let direct =
                P.row_body_of_exploration
                  (Core.Exploration.run_one ~level:Core.Level.L2 ~config applet)
              in
              check_bool
                (Printf.sprintf "row %s bit-identical" config.Jcvm.Configs.name)
                true (direct = row))
            (List.combine Jcvm.Configs.standard wire);
          (* ... and one adaptive cell, provenance included. *)
          let frames =
            frames_exn
              (Serve.Client.request c
                 (P.Explore
                    { P.applets = [ "fib" ]; configs = [ "w16-dedicated" ];
                      level = Core.Level.L1; adaptive = true }))
          in
          match rows_of frames with
          | [ (_, row) ] ->
            let config =
              List.find
                (fun c -> c.Jcvm.Configs.name = "w16-dedicated")
                Jcvm.Configs.standard
            in
            let direct =
              P.row_body_of_exploration
                (Core.Exploration.run_one
                   ~policy:(Hier.Policy.for_exploration ())
                   ~config applet)
            in
            check_bool "adaptive row bit-identical" true (direct = row);
            check_bool "adaptive row has provenance" true
              (row.P.switches <> None && row.P.error_bound_pj <> None)
          | rows -> Alcotest.failf "expected 1 adaptive row, got %d" (List.length rows)))

(* --- stats and the plan memo --- *)

let test_stats_and_plan_memo () =
  with_server ~domains:1 (fun _server path ->
      with_client path (fun c ->
          let run () =
            frames_exn
              (Serve.Client.request c
                 (P.Run
                    { P.workload = P.Table3 64; level = Core.Level.L1;
                      mode = `Serial; estimate = true; profile = false;
                      compiled = true }))
          in
          ignore (run ());
          ignore (run ());
          let frames = frames_exn (Serve.Client.request c P.Stats) in
          match
            List.find_map
              (function P.Stats_reply s -> Some s | _ -> None)
              frames
          with
          | None -> Alcotest.fail "no stats frame"
          | Some s ->
            check_int "both jobs accepted" 2 s.P.accepted;
            check_int "both jobs completed" 2 s.P.completed;
            check_int "nothing rejected" 0 s.P.rejected;
            check_int "nothing failed" 0 s.P.failed;
            check_int "queue idle" 0 s.P.queue_depth;
            check_bool "single worker served both" true
              (List.exists (fun w -> w.P.jobs = 2) s.P.workers);
            (* Same workload twice on one domain: the second run must hit
               the serve-layer plan memo (satellite 6 wires
               Core.Report.pool_stats through as the rendered table). *)
            check_int "one plan build" 1 s.P.pool.P.plan_builds;
            check_bool "plan memo hit" true (s.P.pool.P.plan_hits >= 1);
            check_bool "rendered report present" true
              (String.length s.P.rendered > 0
              && String.length (Core.Report.pool_stats (Serve.Server.pool _server))
                 > 0)))

(* --- concurrency --- *)

let test_concurrent_clients_bit_exact () =
  with_server ~domains:4 ~tcp_port:0 (fun server path ->
      let port =
        match Serve.Server.tcp_port server with
        | Some p -> p
        | None -> Alcotest.fail "no tcp port bound"
      in
      let n = 8 in
      let expected i =
        match i mod 3 with
        | 0 ->
          let r = direct_run ~level:Core.Level.L1 ~mode:`Pipelined (P.Table3 (32 + i)) in
          `Run r
        | 1 ->
          let level = Core.Level.L2 and mode = `Serial in
          let plan =
            Core.Runner.compile_trace ~level ~mode
              ~init:Core.Runner.fill_memories
              (P.trace_of_workload (P.Mixed_phase 80))
          in
          let points =
            [
              {
                Compile.Eval.table =
                  Power.Characterization.scale Power.Characterization.default
                    (0.5 +. float_of_int i);
                l2_params = None;
              };
            ]
          in
          `Replay (List.hd (Core.Runner.replay_multi ~points plan))
        | _ ->
          let applet =
            List.find (fun a -> a.Jcvm.Applets.name = "fib") Jcvm.Applets.all
          in
          let config =
            List.find
              (fun c -> c.Jcvm.Configs.name = "w32-packed")
              Jcvm.Configs.standard
          in
          `Explore
            (P.row_body_of_exploration
               (Core.Exploration.run_one ~level:Core.Level.L1 ~config applet))
      in
      let expectations = List.init n expected in
      let results = Array.make n (Error "not run") in
      let worker i =
        try
          (* Even clients on the Unix socket, odd ones over TCP. *)
          let endpoint =
            if i mod 2 = 0 then `Unix path else `Tcp ("127.0.0.1", port)
          in
          let c = Serve.Client.connect endpoint in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              let req =
                match i mod 3 with
                | 0 ->
                  P.Run
                    { P.workload = P.Table3 (32 + i); level = Core.Level.L1;
                      mode = `Pipelined; estimate = true; profile = false;
                      compiled = true }
                | 1 ->
                  P.Replay
                    { P.workload = P.Mixed_phase 80; level = Core.Level.L2;
                      mode = `Serial; scales = [ 0.5 +. float_of_int i ];
                      fabric = None }
                | _ ->
                  P.Explore
                    { P.applets = [ "fib" ]; configs = [ "w32-packed" ];
                      level = Core.Level.L1; adaptive = false }
              in
              results.(i) <- Serve.Client.request_retrying c req)
        with e -> results.(i) <- Error (Printexc.to_string e)
      in
      let threads = List.init n (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      List.iteri
        (fun i exp ->
          let frames = frames_exn results.(i) in
          check_bool (Printf.sprintf "client %d finished" i) true
            (has_done frames);
          match exp with
          | `Run direct -> (
            match find_result frames with
            | Some wire ->
              check_result_matches (Printf.sprintf "client %d" i) direct wire
            | None -> Alcotest.failf "client %d: no result" i)
          | `Replay (direct : Core.Runner.result) -> (
            match points_of frames with
            | [ w ] ->
              check_bool
                (Printf.sprintf "client %d: point bit-identical" i)
                true
                (w.P.point_bus_pj = direct.Core.Runner.bus_pj
                && w.P.point_cycles = direct.Core.Runner.cycles)
            | pts -> Alcotest.failf "client %d: %d points" i (List.length pts))
          | `Explore direct -> (
            match rows_of frames with
            | [ (_, row) ] ->
              check_bool
                (Printf.sprintf "client %d: row bit-identical" i)
                true (direct = row)
            | rows -> Alcotest.failf "client %d: %d rows" i (List.length rows)))
        expectations)

(* --- backpressure --- *)

let test_backpressure () =
  (* One worker, queue of one: a slow gate-level job in flight plus one
     queued job force busy rejections for a burst of pipelined sends. *)
  with_server ~domains:1 ~queue_depth:1 (fun _server path ->
      with_client path (fun c ->
          let n = 8 in
          let slow_run =
            P.Run
              { P.workload = P.Table3 400; level = Core.Level.Rtl;
                mode = `Serial; estimate = true; profile = false;
                compiled = false }
          in
          for id = 1 to n do
            ignore (Serve.Client.send ~id c slow_run)
          done;
          (* Collect stream per id until every id has a terminator. *)
          let accepted = Hashtbl.create 8 and finished = Hashtbl.create 8 in
          let busy = ref 0 and terminated = ref 0 in
          while !terminated < n do
            match Serve.Client.read_typed c with
            | Error e -> Alcotest.failf "stream error: %s" e
            | Ok (id, frame) -> (
              let id =
                match Obs.Json.int_opt id with
                | Some i -> i
                | None -> Alcotest.fail "response without id"
              in
              match frame with
              | P.Accepted _ -> Hashtbl.replace accepted id ()
              | P.Done _ ->
                Hashtbl.replace finished id ();
                incr terminated
              | P.Error e when e.P.code = P.Busy ->
                incr busy;
                incr terminated;
                check_bool "busy carries retry_after_ms" true
                  (match e.P.retry_after_ms with Some ms -> ms > 0 | None -> false)
              | P.Error e ->
                Alcotest.failf "unexpected error %s: %s"
                  (P.error_code_to_string e.P.code)
                  e.P.message
              | _ -> ())
          done;
          check_bool "some jobs were rejected busy" true (!busy >= 1);
          check_bool "some jobs were accepted" true
            (Hashtbl.length accepted >= 1);
          check_int "every accepted job completed (none lost)"
            (Hashtbl.length accepted) (Hashtbl.length finished);
          check_int "accepted + rejected = sent" n
            (Hashtbl.length accepted + !busy)))

(* --- graceful drain --- *)

let test_shutdown_drains () =
  with_server ~domains:1 (fun server path ->
      let a = Serve.Client.connect (`Unix path) in
      let witness = Serve.Client.connect (`Unix path) in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close witness)
        (fun () ->
          (* A slow job keeps the single worker busy across the drain. *)
          let slow_id =
            Serve.Client.send a
              (P.Run
                 { P.workload = P.Table3 600; level = Core.Level.Rtl;
                   mode = `Serial; estimate = true; profile = false;
                   compiled = false })
          in
          (match Serve.Client.read_typed a with
          | Ok (_, P.Accepted _) -> ()
          | _ -> Alcotest.fail "slow job not accepted");
          (* Shutdown acks, then the daemon refuses new work... *)
          with_client path (fun b ->
              let frames = frames_exn (Serve.Client.request b P.Shutdown) in
              check_bool "shutdown acked" true (has_done frames));
          check_bool "server reports draining" true (Serve.Server.draining server);
          (* Stats stays observable while draining (control plane)... *)
          (match Serve.Client.request witness P.Stats with
          | Ok frames -> check_bool "stats while draining" true (has_done frames)
          | Error e -> Alcotest.failf "witness stream error: %s" e);
          (* ... but new jobs are refused. *)
          (match
             Serve.Client.request witness
               (P.Run
                  { P.workload = P.Table3 8; level = Core.Level.L1;
                    mode = `Serial; estimate = true; profile = false;
                    compiled = false })
           with
          | Ok frames -> (
            match find_error frames with
            | Some e ->
              check_bool "new work refused as draining" true
                (e.P.code = P.Draining)
            | None -> Alcotest.fail "expected a draining error")
          | Error e -> Alcotest.failf "witness stream error: %s" e);
          (* ... but the accepted job still runs to completion. *)
          let frames = frames_exn (Serve.Client.collect a) in
          check_bool "in-flight job completed" true (has_done frames);
          check_bool "in-flight job has its result" true
            (find_result frames <> None);
          ignore slow_id))

let test_sigint_drains () =
  let path = temp_socket () in
  let server =
    Serve.Server.create ~unix_path:path ~domains:1 ~handle_signals:true ()
  in
  let thread = Thread.create Serve.Server.serve server in
  let c = Serve.Client.connect (`Unix path) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Client.close c;
      Serve.Server.drain server;
      Thread.join thread;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      ignore
        (Serve.Client.send c
           (P.Run
              { P.workload = P.Table3 300; level = Core.Level.Rtl;
                mode = `Serial; estimate = true; profile = false;
                compiled = false }));
      (match Serve.Client.read_typed c with
      | Ok (_, P.Accepted _) -> ()
      | _ -> Alcotest.fail "job not accepted");
      Unix.kill (Unix.getpid ()) Sys.sigint;
      (* The signal initiates a drain: the accepted job finishes, serve
         returns, and the socket file disappears. *)
      let frames = frames_exn (Serve.Client.collect c) in
      check_bool "job survived the signal" true (find_result frames <> None);
      Thread.join thread;
      check_bool "socket unlinked on exit" true (not (Sys.file_exists path)))

(* --- jobq unit tests --- *)

let test_jobq () =
  let q = Serve.Jobq.create ~capacity:2 in
  check_bool "push 1" true
    (Serve.Jobq.push q ~client:1 1 = Serve.Jobq.Enqueued 1);
  check_bool "push 2" true
    (Serve.Jobq.push q ~client:1 2 = Serve.Jobq.Enqueued 2);
  check_bool "push to full queue" true
    (Serve.Jobq.push q ~client:2 3 = Serve.Jobq.Full);
  check_bool "pop 1" true (Serve.Jobq.pop q = Some 1);
  Serve.Jobq.drain q;
  check_bool "push while draining" true
    (Serve.Jobq.push q ~client:1 4 = Serve.Jobq.Draining);
  (* Accepted items survive the drain... *)
  check_bool "drained pop yields accepted item" true (Serve.Jobq.pop q = Some 2);
  (* ... and only then does the queue report empty. *)
  check_bool "then signals exhaustion" true (Serve.Jobq.pop q = None)

let test_jobq_round_robin () =
  (* Client 10 piles up a backlog before clients 20 and 30 arrive with a
     job each: dequeue must interleave the clients rather than drain
     10's backlog first. *)
  let q = Serve.Jobq.create ~capacity:16 in
  let push client job =
    match Serve.Jobq.push q ~client job with
    | Serve.Jobq.Enqueued _ -> ()
    | Serve.Jobq.Full | Serve.Jobq.Draining -> Alcotest.fail "push refused"
  in
  List.iter (push 10) [ "a1"; "a2"; "a3" ];
  push 20 "b1";
  push 30 "c1";
  push 20 "b2";
  let order =
    List.init 6 (fun _ ->
        match Serve.Jobq.pop q with
        | Some j -> j
        | None -> Alcotest.fail "queue exhausted early")
  in
  check_bool "round-robin interleaves clients" true
    (order = [ "a1"; "b1"; "c1"; "a2"; "b2"; "a3" ]);
  (* An emptied client leaves the rotation entirely and re-enters at the
     tail on its next push. *)
  push 10 "a4";
  push 20 "b3";
  check_bool "fresh rotation after exhaustion" true
    (Serve.Jobq.pop q = Some "a4" && Serve.Jobq.pop q = Some "b3");
  (* A pop on an idle queue blocks for more work by design; only a
     draining queue reports exhaustion. *)
  Serve.Jobq.drain q;
  check_bool "exhausted once draining" true (Serve.Jobq.pop q = None)

(* --- telemetry plane (DESIGN.md section 16) --- *)

let quick_run ?(n = 8) () =
  P.Run
    { P.workload = P.Table3 n; level = Core.Level.L1; mode = `Serial;
      estimate = true; profile = false; compiled = false }

(* Reads [requests.<kind>.<field>] out of a telemetry snapshot. *)
let snapshot_kind_count snapshot ~kind ~field =
  match Obs.Json.member "requests" snapshot with
  | None -> -1
  | Some reqs -> (
    match Obs.Json.member kind reqs with
    | None -> 0
    | Some k ->
      Option.value ~default:(-1)
        (Option.bind (Obs.Json.member field k) Obs.Json.int_opt))

let find_metrics frames =
  List.find_map (function P.Metrics_reply m -> Some m | _ -> None) frames

let test_metrics_request () =
  with_server ~domains:1 (fun server path ->
      with_client path (fun c ->
          ignore (frames_exn (Serve.Client.request c (quick_run ())));
          let frames = frames_exn (Serve.Client.request c P.Metrics) in
          check_bool "terminated with done" true (has_done frames);
          match find_metrics frames with
          | None -> Alcotest.fail "no metrics frame"
          | Some m ->
            check_int "one-shot snapshot has seq 0" 0 m.P.metrics_seq;
            check_bool "rendered tables present" true
              (String.length m.P.metrics_rendered > 0);
            check_int "snapshot accounts the completed run" 1
              (snapshot_kind_count m.P.snapshot ~kind:"run" ~field:"completed");
            check_bool "span ring populated for post-drain export" true
              (Serve.Telemetry.spans_total (Serve.Server.telemetry server)
              >= 1)))

(* B/E spans balance per (tid) lane and never close an unopened span —
   the structural validity Perfetto demands of the streamed chunks. *)
let check_chrome_events events =
  let depth = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ph =
        Option.bind (Obs.Json.member "ph" ev) Obs.Json.string_opt
        |> Option.value ~default:"?"
      in
      let tid =
        Option.bind (Obs.Json.member "tid" ev) Obs.Json.int_opt
        |> Option.value ~default:(-1)
      in
      let d = try Hashtbl.find depth tid with Not_found -> 0 in
      match ph with
      | "B" -> Hashtbl.replace depth tid (d + 1)
      | "E" ->
        check_bool "E only closes an open B" true (d > 0);
        Hashtbl.replace depth tid (d - 1)
      | _ -> ())
    events;
  Hashtbl.iter (fun _ d -> check_int "all spans closed" 0 d) depth

let test_subscribe_lifecycle () =
  with_server ~domains:2 (fun _server path ->
      let sub = Serve.Client.connect (`Unix path) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close sub)
        (fun () ->
          (match
             Serve.Client.subscribe ~id:42 ~interval_ms:50 sub
               ~streams:[ `Metrics; `Trace ]
           with
          | Ok id -> check_int "subscribe id echoed" 42 id
          | Error e -> Alcotest.failf "subscribe failed: %s" e);
          (* Work arrives on a second connection while subscribed. *)
          with_client path (fun c ->
              for _ = 1 to 3 do
                ignore (frames_exn (Serve.Client.request c (quick_run ())))
              done);
          (* Snapshots tick until one accounts all three runs exactly —
             the streamed ledger reconciling with the client-observed
             count — and at least one chunk carries trace events. *)
          let metrics = ref [] and events = ref [] in
          let reconciled m =
            snapshot_kind_count m.P.snapshot ~kind:"run" ~field:"completed"
            = 3
          in
          let deadline = Unix.gettimeofday () +. 10.0 in
          while
            (not (List.exists reconciled !metrics))
            || !events = []
            || List.length !metrics < 2
          do
            if Unix.gettimeofday () > deadline then
              Alcotest.fail "subscription never reconciled";
            match Serve.Client.read_typed sub with
            | Ok (id, P.Metrics_reply m) ->
              check_bool "stream frame tagged with subscribe id" true
                (id = Obs.Json.Int 42);
              metrics := m :: !metrics
            | Ok (_, P.Trace_chunk tc) ->
              check_int "no ring overwrites at this volume" 0
                tc.P.trace_missed;
              events := !events @ tc.P.trace_events
            | Ok _ -> ()
            | Error e -> Alcotest.failf "subscriber stream: %s" e
          done;
          (* Sequence numbers count up from 0 without gaps. *)
          List.iteri
            (fun i (m : P.metrics_body) -> check_int "metrics seq" i m.P.metrics_seq)
            (List.rev !metrics);
          check_bool "several snapshots at the 50 ms cadence" true
            (List.length !metrics >= 2);
          (* Chunked Chrome events concatenate into a valid document:
             metadata first chunk, worker-lane B/E pairs balanced. *)
          check_bool "metadata names the lanes" true
            (List.exists
               (fun ev ->
                 Option.bind (Obs.Json.member "ph" ev) Obs.Json.string_opt
                 = Some "M")
               !events);
          check_chrome_events !events;
          (* Unsubscribe acks and the stream goes quiet: at most the one
             tick already in flight may trail the ack. *)
          (match Serve.Client.unsubscribe sub with
          | Ok () -> ()
          | Error e -> Alcotest.failf "unsubscribe failed: %s" e);
          let rec drain_trailing n =
            let readable, _, _ =
              Unix.select [ Serve.Client.fd sub ] [] [] 0.15
            in
            if readable <> [] then begin
              check_bool "bounded trailing frames" true (n < 3);
              (match Serve.Client.read_typed sub with
              | Ok (_, (P.Metrics_reply _ | P.Trace_chunk _)) -> ()
              | Ok (_, _) -> Alcotest.fail "unexpected trailing frame"
              | Error e -> Alcotest.failf "trailing read: %s" e);
              drain_trailing (n + 1)
            end
          in
          drain_trailing 0;
          (* The connection stays aligned for ordinary requests. *)
          let frames = frames_exn (Serve.Client.request sub P.Stats) in
          check_bool "stats after unsubscribe" true (has_done frames)))

let test_subscriber_disconnect () =
  with_server ~domains:2 (fun _server path ->
      (* A subscriber that vanishes cold (no unsubscribe, no handshake)
         must cost the daemon nothing: the ticker drops it and the
         workers never notice. *)
      let sub = Serve.Client.connect (`Unix path) in
      (match
         Serve.Client.subscribe ~interval_ms:20 sub
           ~streams:[ `Metrics; `Trace; `Energy ]
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "subscribe failed: %s" e);
      (* Let at least one tick flow so the death happens mid-stream. *)
      (match Serve.Client.read_typed sub with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "first stream frame: %s" e);
      Serve.Client.close sub;
      with_client path (fun c ->
          for _ = 1 to 3 do
            check_bool "request completes after subscriber death" true
              (has_done (frames_exn (Serve.Client.request c (quick_run ()))))
          done;
          (* A couple of ticker periods later the daemon is still fully
             responsive — the dead subscriber cost at most one failed
             write. *)
          Thread.delay 0.1;
          let frames = frames_exn (Serve.Client.request c P.Stats) in
          check_bool "stats after subscriber death" true (has_done frames)))

let test_telemetry_reconciles_concurrent () =
  (* 8 clients, 3 requests each, then one fresh connection reads the
     daemon's ledger: every accepted job must be accounted completed,
     and the per-client rows must sum to the same total. *)
  with_server ~domains:4 (fun _server path ->
      let n = 8 and per_client = 3 in
      let errors = Array.make n None in
      let worker i =
        try
          let c = Serve.Client.connect (`Unix path) in
          Fun.protect
            ~finally:(fun () -> Serve.Client.close c)
            (fun () ->
              for _ = 1 to per_client do
                let frames =
                  frames_exn
                    (Serve.Client.request_retrying c (quick_run ~n:(8 + i) ()))
                in
                if not (has_done frames) then failwith "no done frame"
              done)
        with e -> errors.(i) <- Some (Printexc.to_string e)
      in
      let threads = List.init n (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iter
        (function
          | Some e -> Alcotest.failf "client thread failed: %s" e
          | None -> ())
        errors;
      with_client path (fun c ->
          let frames = frames_exn (Serve.Client.request c P.Metrics) in
          match find_metrics frames with
          | None -> Alcotest.fail "no metrics frame"
          | Some m ->
            check_int "every run accounted completed" (n * per_client)
              (snapshot_kind_count m.P.snapshot ~kind:"run" ~field:"completed");
            check_int "nothing failed" 0
              (snapshot_kind_count m.P.snapshot ~kind:"run" ~field:"failed");
            (* The per-client ledger sums to the same total. *)
            let client_sum =
              match Obs.Json.member "clients" m.P.snapshot with
              | Some (Obs.Json.Obj clients) ->
                List.fold_left
                  (fun acc (_, cl) ->
                    acc
                    + Option.value ~default:0
                        (Option.bind
                           (Obs.Json.member "completed" cl)
                           Obs.Json.int_opt))
                  0 clients
              | Some _ | None -> -1
            in
            check_int "per-client rows sum to the total" (n * per_client)
              client_sum))

let test_round_robin_wire_fairness () =
  (* One worker: client A pipelines a backlog of slow gate-level jobs,
     then client B sends a single quick one.  Per-client round-robin
     must schedule B's job ahead of A's backlog, so B finishes while A
     still has jobs queued. *)
  with_server ~domains:1 ~queue_depth:32 (fun _server path ->
      let a = Serve.Client.connect (`Unix path) in
      let b = Serve.Client.connect (`Unix path) in
      Fun.protect
        ~finally:(fun () ->
          Serve.Client.close a;
          Serve.Client.close b)
        (fun () ->
          let slow =
            P.Run
              { P.workload = P.Table3 200; level = Core.Level.Rtl;
                mode = `Serial; estimate = true; profile = false;
                compiled = false }
          in
          let n = 5 in
          for id = 1 to n do
            ignore (Serve.Client.send ~id a slow)
          done;
          let accepted = ref 0 and dones = ref 0 in
          let a_err = ref None in
          let a_last_done = ref 0.0 in
          let a_thread =
            Thread.create
              (fun () ->
                while !dones < n && !a_err = None do
                  match Serve.Client.read_typed a with
                  | Ok (_, P.Accepted _) -> incr accepted
                  | Ok (_, P.Done _) ->
                    incr dones;
                    a_last_done := Unix.gettimeofday ()
                  | Ok (_, P.Error e) -> a_err := Some e.P.message
                  | Ok _ -> ()
                  | Error e -> a_err := Some e
                done)
              ()
          in
          (* Wait until A's backlog is actually enqueued. *)
          while !accepted < n && !a_err = None do
            Thread.delay 0.001
          done;
          let frames = frames_exn (Serve.Client.request b (quick_run ())) in
          let b_done = Unix.gettimeofday () in
          check_bool "b finished" true (has_done frames);
          Thread.join a_thread;
          (match !a_err with
          | Some e -> Alcotest.failf "client A stream: %s" e
          | None -> ());
          check_bool
            "round-robin served the newcomer before the backlog drained"
            true
            (b_done < !a_last_done)))

(* --- telemetry frame codecs (property) --- *)

let gen_stream =
  QCheck.Gen.oneofl ([ `Metrics; `Trace; `Energy ] : P.stream list)

let gen_telemetry_frame =
  let open QCheck.Gen in
  let small = int_bound 10_000 in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let sane_float = map (fun i -> float_of_int i /. 16.0) small in
  let flat_json =
    oneof
      [
        return Obs.Json.Null;
        map (fun i -> Obs.Json.Int i) small;
        map (fun f -> Obs.Json.Float f) sane_float;
        map (fun s -> Obs.Json.String s) name;
        map (fun kvs -> Obs.Json.Obj kvs) (list_size (int_bound 4) (pair name (map (fun i -> Obs.Json.Int i) small)));
      ]
  in
  let trace_event =
    map2
      (fun n (ts, tid) ->
        Obs.Json.Obj
          [
            ("name", Obs.Json.String n);
            ("ph", Obs.Json.String "B");
            ("ts", Obs.Json.Int ts);
            ("pid", Obs.Json.Int 1);
            ("tid", Obs.Json.Int tid);
          ])
      name (pair small small)
  in
  oneof
    [
      map2
        (fun seq (snapshot, rendered) ->
          P.Metrics_reply
            { P.metrics_seq = seq; snapshot; metrics_rendered = rendered })
        small
        (pair flat_json name);
      map2
        (fun (seq, missed) events ->
          P.Trace_chunk
            { P.trace_seq = seq; trace_events = events; trace_missed = missed })
        (pair small small)
        (list_size (int_bound 5) trace_event);
      map2
        (fun streams interval ->
          P.Subscribed
            { P.sub_streams = streams; sub_interval_ms = 10 + interval })
        (list_size (int_range 1 3) gen_stream)
        small;
    ]

let prop_telemetry_frame_roundtrip =
  QCheck.Test.make ~name:"telemetry frames round-trip the wire codec"
    ~count:500
    (QCheck.make gen_telemetry_frame)
    (fun frame ->
      let doc = P.frame_to_json ~id:(Obs.Json.Int 9) frame in
      match P.frame_of_json doc with
      | Ok (id, frame') ->
        (id = Obs.Json.Int 9 && frame = frame')
        || QCheck.Test.fail_reportf "decoded differently: %s"
             (Obs.Json.to_string doc)
      | Error e ->
        QCheck.Test.fail_reportf "does not decode: %s (%s)" e
          (Obs.Json.to_string doc))

let suite =
  [
    Alcotest.test_case "framing round-trip and resync" `Quick
      test_framing_roundtrip;
    Alcotest.test_case "framing read honours stop on receive timeout" `Quick
      test_framing_stop;
    Alcotest.test_case "request codec and validation" `Quick test_request_codec;
    Alcotest.test_case "jobq bounded/drain semantics" `Quick test_jobq;
    Alcotest.test_case "jobq per-client round-robin" `Quick
      test_jobq_round_robin;
    QCheck_alcotest.to_alcotest prop_telemetry_frame_roundtrip;
    Alcotest.test_case "malformed frames get error frames" `Quick
      test_malformed_frames;
    Alcotest.test_case "failed error does not desync the stream" `Quick
      test_failed_error_keeps_stream_aligned;
    Alcotest.test_case "run bit-exact over the wire" `Quick test_run_bit_exact;
    Alcotest.test_case "profile streams as jsonl chunks" `Quick
      test_profile_stream;
    Alcotest.test_case "replay points bit-exact" `Quick test_replay_bit_exact;
    Alcotest.test_case "fabric replay buckets bit-exact" `Quick
      test_fabric_replay_bit_exact;
    Alcotest.test_case "explore rows bit-exact" `Quick test_explore_bit_exact;
    Alcotest.test_case "stats and plan-memo hit" `Quick test_stats_and_plan_memo;
    Alcotest.test_case "8 concurrent clients bit-exact" `Quick
      test_concurrent_clients_bit_exact;
    Alcotest.test_case "backpressure: busy with retry_after" `Quick
      test_backpressure;
    Alcotest.test_case "shutdown drains in-flight work" `Quick
      test_shutdown_drains;
    Alcotest.test_case "SIGINT drains gracefully" `Quick test_sigint_drains;
    Alcotest.test_case "one-shot metrics request" `Quick test_metrics_request;
    Alcotest.test_case "subscribe/unsubscribe lifecycle" `Quick
      test_subscribe_lifecycle;
    Alcotest.test_case "subscriber disconnect never stalls workers" `Quick
      test_subscriber_disconnect;
    Alcotest.test_case "telemetry reconciles under 8 clients" `Quick
      test_telemetry_reconciles_concurrent;
    Alcotest.test_case "round-robin fairness over the wire" `Quick
      test_round_robin_wire_fairness;
  ]
