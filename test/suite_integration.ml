(* End-to-end reproduction checks: the paper's result bands, the JCVM
   exploration, and the DPA story. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Shared across the slow accuracy checks (characterization is the
   expensive part). *)
let accuracy_rows = lazy (Core.Experiments.run_accuracy ())

let row level =
  List.find (fun r -> r.Core.Experiments.level = level) (Lazy.force accuracy_rows)

(* Table 1: layer 1 is cycle-exact; layer 2 within a few percent,
   overestimating. *)
let test_table1_bands () =
  let rtl = row Core.Level.Rtl in
  let l1 = row Core.Level.L1 in
  let l2 = row Core.Level.L2 in
  check_int "l1 exact" rtl.Core.Experiments.cycles l1.Core.Experiments.cycles;
  check_bool
    (Printf.sprintf "l2 error %+.2f%% in (0, 3]" l2.Core.Experiments.cycle_err_pct)
    true
    (l2.Core.Experiments.cycle_err_pct > 0.0
    && l2.Core.Experiments.cycle_err_pct <= 3.0)

(* Table 2: layer 1 underestimates by roughly 8%, layer 2 overestimates
   by roughly 15% (paper: -7.8% / +14.7%). *)
let test_table2_bands () =
  let l1 = row Core.Level.L1 in
  let l2 = row Core.Level.L2 in
  check_bool
    (Printf.sprintf "l1 error %+.2f%% in [-12, -4]" l1.Core.Experiments.energy_err_pct)
    true
    (l1.Core.Experiments.energy_err_pct <= -4.0
    && l1.Core.Experiments.energy_err_pct >= -12.0);
  check_bool
    (Printf.sprintf "l2 error %+.2f%% in [8, 25]" l2.Core.Experiments.energy_err_pct)
    true
    (l2.Core.Experiments.energy_err_pct >= 8.0
    && l2.Core.Experiments.energy_err_pct <= 25.0)

(* Table 3 shape: estimation costs speed; layer 2 is faster than layer 1;
   the gate-level reference is far slower than both.  Throughput is wall
   clock, so each row takes the best of two measurement passes: a
   scheduler stall in one pass (common on 1-core boxes under load)
   otherwise undershoots a row and flips a shape comparison. *)
let test_table3_shape () =
  let rows = Core.Experiments.run_performance ~txns:4000 () in
  let rows' = Core.Experiments.run_performance ~txns:4000 () in
  let find label =
    let kts (rs : Core.Experiments.perf_row list) =
      (List.find
         (fun (r : Core.Experiments.perf_row) -> r.Core.Experiments.label = label)
         rs)
        .Core.Experiments.kilo_txns_per_s
    in
    Float.max (kts rows) (kts rows')
  in
  let l1_est = find "TL layer 1, with estimation" in
  let l1_raw = find "TL layer 1, without estimation" in
  let l2_est = find "TL layer 2, with estimation" in
  let l2_raw = find "TL layer 2, without estimation" in
  let rtl = find "gate-level reference" in
  check_bool "estimation costs speed (l1)" true (l1_raw > l1_est);
  (* The layer-2 lump estimation is cheap; wall-clock noise can hide it,
     so only require it not to be a speedup beyond noise. *)
  check_bool "estimation not faster (l2)" true (l2_raw > 0.9 *. l2_est);
  check_bool "l2 faster than l1" true (l2_est > l1_est);
  check_bool "rtl much slower" true (rtl < l1_est /. 2.0)

(* Figure 6: both estimates account the same transactions; the lumped
   samples sum to the layer-2 total; layer 1 spreads energy over more
   cycles than layer 2 has lumps. *)
let test_figure6_semantics () =
  let f = Core.Experiments.run_figure6 () in
  let lump_sum = List.fold_left (fun acc (_, e) -> acc +. e) 0.0 f.Core.Experiments.l2_lumps in
  Alcotest.(check (float 1e-6)) "lumps sum to total" f.Core.Experiments.l2_total lump_sum;
  check_int "two samples" 2 (List.length f.Core.Experiments.l2_lumps);
  let nonzero = ref 0 in
  let p = f.Core.Experiments.l1_profile in
  for i = 0 to Power.Profile.length p - 1 do
    if Power.Profile.get p i > 0.0 then incr nonzero
  done;
  check_bool "l1 cycle-accurate profile" true (!nonzero > 2)

(* Section 4.3: the exploration separates configurations and never breaks
   functionality. *)
let test_exploration_sanity () =
  let rows =
    Core.Exploration.run ~applets:[ Jcvm.Applets.wallet ] ()
  in
  List.iter
    (fun r -> check_bool (r.Core.Exploration.config.Jcvm.Configs.name ^ " ok") true
        r.Core.Exploration.correct)
    rows;
  let energy name =
    (List.find
       (fun r -> r.Core.Exploration.config.Jcvm.Configs.name = name)
       rows)
      .Core.Exploration.bus_pj
  in
  (* Expected ordering of the design space. *)
  check_bool "packed beats plain 16-bit" true
    (energy "w32-packed" < energy "w16-dedicated");
  check_bool "16-bit beats 8-bit" true
    (energy "w16-dedicated" < energy "w8-dedicated");
  check_bool "dedicated beats cmd+data" true
    (energy "w16-dedicated" < energy "w16-cmd+data");
  check_bool "compact map beats spread map" true
    (energy "w16-cmd+data" < energy "w16-cmd+data-spread")

let test_exploration_levels_agree_on_ranking () =
  (* Layer 2 is less accurate and may swap near-tied configurations, but
     it must agree with layer 1 on the winner and the loser for the
     design decision to be safe. *)
  let ranking level =
    Core.Exploration.run ~level ~applets:[ Jcvm.Applets.fib ] ()
    |> List.sort (fun a b -> compare a.Core.Exploration.bus_pj b.Core.Exploration.bus_pj)
    |> List.map (fun r -> r.Core.Exploration.config.Jcvm.Configs.name)
  in
  let l1 = ranking Core.Level.L1 and l2 = ranking Core.Level.L2 in
  Alcotest.(check string) "same winner" (List.hd l1) (List.hd l2);
  Alcotest.(check string) "same loser"
    (List.hd (List.rev l1))
    (List.hd (List.rev l2))

(* Power analysis: DPA on simulated layer-1 bus traces of the crypto
   coprocessor recovers a key byte; the masked readout defeats it. *)
let crypto_traces ~masked ~n =
  let rng = Sim.Rng.create ~seed:0xD1A in
  let key = 0x0000003C in
  let inputs = List.init n (fun _ -> Sim.Rng.bits rng 8) in
  let trace_index = ref 0 in
  let traces =
    List.map
      (fun pt ->
        incr trace_index;
        (* Each encryption runs on its own card instance with its own
           random streams (a shared mask stream would be a broken RNG). *)
        let system =
          Core.System.create ~level:Core.Level.L1 ~record_profile:true
            ~seed:!trace_index ()
        in
        let kernel = Core.System.kernel system in
        let port = Core.System.port system in
        let ids = Ec.Txn.Id_gen.create () in
        let transact txn =
          assert (port.Ec.Port.try_submit txn);
          ignore
            (Sim.Kernel.run_until kernel ~max_cycles:10_000 (fun () ->
                 Ec.Port.completed port txn.Ec.Txn.id));
          port.Ec.Port.retire txn.Ec.Txn.id;
          txn.Ec.Txn.data.(0)
        in
        let base = Soc.Platform.Map.crypto_base in
        let wr addr v =
          ignore
            (transact
               (Ec.Txn.single_write ~id:(Ec.Txn.Id_gen.fresh ids) addr ~value:v))
        in
        let rd addr =
          transact (Ec.Txn.single_read ~id:(Ec.Txn.Id_gen.fresh ids) addr)
        in
        wr (base + 0x00) key;
        wr (base + 0x04) pt;
        wr (base + 0x08) (if masked then 0b11 else 0b01);
        let rec wait_done () =
          if rd (base + 0x0C) land 2 = 0 then wait_done ()
        in
        wait_done ();
        let ct = rd (base + 0x10) in
        let ct =
          if masked then begin
            (* Read a constant register between DOUT and MASK: a
               back-to-back DOUT/MASK read would put ct^m and m on
               consecutive read-data cycles, whose Hamming distance IS
               HW(ct) — the mask would leak its own removal. *)
            ignore (rd (base + 0x0C));
            ct lxor rd (base + 0x14)
          end
          else ct
        in
        ignore ct;
        match Core.System.profile system with
        | Some p -> Power.Profile.to_array p
        | None -> assert false)
      inputs
  in
  (inputs, traces, key)

(* Hypothetical leakage: Hamming weight of the predicted ciphertext byte
   on the read-data bus. *)
let hw_model ~key ~input =
  float_of_int (Power.Dpa.hamming_weight (Soc.Crypto.sbox (input lxor key)))

let test_cpa_recovers_unprotected_key () =
  let inputs, traces, key = crypto_traces ~masked:false ~n:150 in
  match
    Power.Dpa.cpa_attack ~traces ~inputs ~model:hw_model
      ~guesses:(List.init 256 Fun.id)
  with
  | (best, score) :: _ ->
    check_int "key byte recovered" (key land 0xFF) best;
    check_bool "correlation meaningful" true (score > 0.3)
  | [] -> Alcotest.fail "no result"

let test_masked_readout_blunts_cpa () =
  let inputs, traces, key = crypto_traces ~masked:true ~n:150 in
  let scores =
    Power.Dpa.cpa_attack ~traces ~inputs ~model:hw_model
      ~guesses:(List.init 256 Fun.id)
  in
  (* The right key must not stand out: either someone else ranks first or
     the margin over the runner-up is small. *)
  match scores with
  | (best, s0) :: (_, s1) :: _ ->
    check_bool "no clear leak" true (best <> key land 0xFF || s0 < 1.3 *. s1)
  | _ -> Alcotest.fail "no result"

let suite =
  [
    Alcotest.test_case "table 1 bands" `Slow test_table1_bands;
    Alcotest.test_case "table 2 bands" `Slow test_table2_bands;
    Alcotest.test_case "table 3 shape" `Slow test_table3_shape;
    Alcotest.test_case "figure 6 semantics" `Quick test_figure6_semantics;
    Alcotest.test_case "exploration sanity" `Slow test_exploration_sanity;
    Alcotest.test_case "exploration rankings agree" `Slow
      test_exploration_levels_agree_on_ranking;
    Alcotest.test_case "cpa recovers unprotected key" `Slow
      test_cpa_recovers_unprotected_key;
    Alcotest.test_case "masked readout blunts cpa" `Slow
      test_masked_readout_blunts_cpa;
  ]
