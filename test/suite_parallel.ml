(* Core.Parallel: the domain-pool map must never change a reported
   number — parallel experiment sweeps are bit-identical to serial ones,
   whatever the scheduling. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  check_bool "order, many domains" true
    (Core.Parallel.map ~domains:8 (fun i -> i * i) xs = List.map (fun i -> i * i) xs);
  check_bool "order, one domain" true
    (Core.Parallel.map ~domains:1 (fun i -> i + 1) xs = List.map (fun i -> i + 1) xs);
  check_bool "empty" true (Core.Parallel.map ~domains:4 (fun i -> i) [] = []);
  check_bool "more domains than items" true
    (Core.Parallel.map ~domains:16 string_of_int [ 1; 2 ] = [ "1"; "2" ])

exception Boom of int

let test_map_propagates_failure () =
  match Core.Parallel.map ~domains:4 (fun i -> if i = 5 then raise (Boom i) else i)
          (List.init 20 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 5 -> ()

(* Everything but the wall clock and the (absent) profile. *)
let strip (r : Core.Runner.result) =
  ( r.Core.Runner.level,
    r.Core.Runner.cycles,
    r.Core.Runner.txns,
    r.Core.Runner.beats,
    r.Core.Runner.errors,
    r.Core.Runner.bus_pj,
    r.Core.Runner.component_pj,
    r.Core.Runner.transitions )

let test_run_levels_deterministic () =
  let trace = Core.Workloads.table3_trace ~n:64 in
  let serial = Core.Runner.run_levels ~mode:`Serial ~domains:1 trace in
  let parallel = Core.Runner.run_levels ~mode:`Serial ~domains:4 trace in
  check_int "three levels" 3 (List.length parallel);
  List.iter2
    (fun s p ->
      check_bool
        (Core.Level.to_string s.Core.Runner.level ^ " field-for-field equal")
        true
        (strip s = strip p))
    serial parallel

let test_run_accuracy_deterministic () =
  let table = Core.Runner.characterize () in
  let serial = Core.Experiments.run_accuracy ~table ~domains:1 () in
  let parallel = Core.Experiments.run_accuracy ~table ~domains:4 () in
  check_bool "accuracy rows identical" true (serial = parallel)

let test_exploration_deterministic () =
  let applets = [ Jcvm.Applets.fib ] in
  let serial = Core.Exploration.run ~applets ~domains:1 () in
  let parallel = Core.Exploration.run ~applets ~domains:4 () in
  check_bool "exploration rows identical" true (serial = parallel)

(* --- persistent worker pool --- *)

let test_with_pool_map () =
  Core.Parallel.with_pool ~domains:4 (fun p ->
      let xs = List.init 50 (fun i -> i) in
      check_bool "pooled map preserves order" true
        (Core.Parallel.map ~pool:p (fun i -> i * 3) xs
        = List.map (fun i -> i * 3) xs);
      check_bool "pool is reusable across maps" true
        (Core.Parallel.map ~pool:p string_of_int xs = List.map string_of_int xs);
      (match
         Core.Parallel.map ~pool:p
           (fun i -> if i = 7 then raise (Boom i) else i)
           xs
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ());
      check_bool "pool survives a failed batch" true
        (Core.Parallel.map ~pool:p (fun i -> i + 1) xs
        = List.map (fun i -> i + 1) xs))

let test_with_pool_propagates_from_f () =
  match Core.Parallel.with_pool ~domains:2 (fun _ -> raise (Boom 1)) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 1 -> ()

(* --- session pool under the worker pool --- *)

(* Sessions are domain-local: a checkout under Parallel.map must never be
   observed on a different domain than built it, and never concurrently
   by two workers.  The probe session records its birth domain and flags
   overlapping checkouts with an atomic in-use marker. *)
type probe = { created_on : int; busy : bool Atomic.t }

let probe_kind : probe Core.Pool.kind = Core.Pool.kind ()

let test_pool_affinity_under_map () =
  let pool = Core.Pool.create () in
  let overlaps = Atomic.make 0 in
  let migrations = Atomic.make 0 in
  let work _ =
    Core.Pool.with_session pool probe_kind ~key:"probe"
      ~build:(fun () ->
        { created_on = (Domain.self () :> int); busy = Atomic.make false })
      ~reset:(fun _ -> ())
      (fun s ->
        if not (Atomic.compare_and_set s.busy false true) then
          Atomic.incr overlaps;
        if s.created_on <> (Domain.self () :> int) then
          Atomic.incr migrations;
        (* Hold the session across some real work so an aliasing bug has
           a window to overlap in. *)
        let acc = ref 0 in
        for i = 1 to 10_000 do
          acc := !acc + i
        done;
        ignore (Sys.opaque_identity !acc);
        Atomic.set s.busy false)
  in
  ignore (Core.Parallel.map ~domains:4 work (List.init 200 (fun i -> i)));
  check_int "no session checked out concurrently" 0 (Atomic.get overlaps);
  check_int "no session crossed domains" 0 (Atomic.get migrations);
  check_bool "every domain built its own session" true
    (Core.Pool.builds pool <= 4 && Core.Pool.builds pool >= 1);
  check_int "every checkout accounted for" 200
    (Core.Pool.builds pool + Core.Pool.hits pool)

(* --- cross-run state leaks --- *)

(* The dedicated regression for the reset protocol: two different traces
   back-to-back on one pooled session must reproduce two fresh sessions,
   and replaying the first trace again must reproduce its first run. *)
let test_pooled_no_cross_run_leak () =
  let t1 = Core.Workloads.table3_trace ~n:96 in
  let t2 =
    Core.Workloads.random_trace ~rng:(Sim.Rng.create ~seed:7) ~n:60 ()
  in
  let pool = Core.Pool.create () in
  List.iter
    (fun level ->
      let fresh tr = strip (Core.Runner.run_trace ~level tr) in
      let pooled tr = strip (Core.Runner.run_trace ~level ~pool tr) in
      let f1 = fresh t1 and f2 = fresh t2 in
      let tag s =
        Core.Level.to_string level ^ ": " ^ s
      in
      check_bool (tag "first trace on the pooled session") true (pooled t1 = f1);
      check_bool (tag "a different trace on the same session") true
        (pooled t2 = f2);
      check_bool (tag "the first trace again after reset") true (pooled t1 = f1))
    [ Core.Level.Rtl; Core.Level.L1; Core.Level.L2 ];
  check_int "one session built per level" 3 (Core.Pool.builds pool);
  check_int "replays were resets, not rebuilds" 6 (Core.Pool.hits pool)

let test_exploration_pooled_matches_unpooled () =
  let applets = [ Jcvm.Applets.fib ] in
  check_bool "pooled sweep rows = unpooled sweep rows" true
    (Core.Exploration.run ~applets ~pool:false ()
    = Core.Exploration.run ~applets ~pool:true ())

let test_exploration_on_worker_pool () =
  let applets = [ Jcvm.Applets.gcd ] in
  let serial = Core.Exploration.run ~applets ~domains:1 ~pool:false () in
  let pooled =
    Core.Parallel.with_pool ~domains:4 (fun w ->
        Core.Exploration.run ~applets ~workers:w ())
  in
  check_bool "session-pooled sweep on the worker pool = serial fresh sweep"
    true (serial = pooled)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map propagates the first failure" `Quick
      test_map_propagates_failure;
    Alcotest.test_case "parallel run_levels = serial run_levels" `Quick
      test_run_levels_deterministic;
    Alcotest.test_case "parallel run_accuracy = serial run_accuracy" `Slow
      test_run_accuracy_deterministic;
    Alcotest.test_case "parallel exploration = serial exploration" `Quick
      test_exploration_deterministic;
    Alcotest.test_case "with_pool: reusable ordered map" `Quick
      test_with_pool_map;
    Alcotest.test_case "with_pool propagates the caller's exception" `Quick
      test_with_pool_propagates_from_f;
    Alcotest.test_case "session pool never shares across domains" `Quick
      test_pool_affinity_under_map;
    Alcotest.test_case "pooled session leaks nothing across runs" `Quick
      test_pooled_no_cross_run_leak;
    Alcotest.test_case "pooled exploration = unpooled exploration" `Quick
      test_exploration_pooled_matches_unpooled;
    Alcotest.test_case "exploration on worker pool + session pool" `Quick
      test_exploration_on_worker_pool;
  ]
