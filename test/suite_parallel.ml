(* Core.Parallel: the domain-pool map must never change a reported
   number — parallel experiment sweeps are bit-identical to serial ones,
   whatever the scheduling. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  check_bool "order, many domains" true
    (Core.Parallel.map ~domains:8 (fun i -> i * i) xs = List.map (fun i -> i * i) xs);
  check_bool "order, one domain" true
    (Core.Parallel.map ~domains:1 (fun i -> i + 1) xs = List.map (fun i -> i + 1) xs);
  check_bool "empty" true (Core.Parallel.map ~domains:4 (fun i -> i) [] = []);
  check_bool "more domains than items" true
    (Core.Parallel.map ~domains:16 string_of_int [ 1; 2 ] = [ "1"; "2" ])

exception Boom of int

let test_map_propagates_failure () =
  match Core.Parallel.map ~domains:4 (fun i -> if i = 5 then raise (Boom i) else i)
          (List.init 20 (fun i -> i))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 5 -> ()

(* Everything but the wall clock and the (absent) profile. *)
let strip (r : Core.Runner.result) =
  ( r.Core.Runner.level,
    r.Core.Runner.cycles,
    r.Core.Runner.txns,
    r.Core.Runner.beats,
    r.Core.Runner.errors,
    r.Core.Runner.bus_pj,
    r.Core.Runner.component_pj,
    r.Core.Runner.transitions )

let test_run_levels_deterministic () =
  let trace = Core.Workloads.table3_trace ~n:64 in
  let serial = Core.Runner.run_levels ~mode:`Serial ~domains:1 trace in
  let parallel = Core.Runner.run_levels ~mode:`Serial ~domains:4 trace in
  check_int "three levels" 3 (List.length parallel);
  List.iter2
    (fun s p ->
      check_bool
        (Core.Level.to_string s.Core.Runner.level ^ " field-for-field equal")
        true
        (strip s = strip p))
    serial parallel

let test_run_accuracy_deterministic () =
  let table = Core.Runner.characterize () in
  let serial = Core.Experiments.run_accuracy ~table ~domains:1 () in
  let parallel = Core.Experiments.run_accuracy ~table ~domains:4 () in
  check_bool "accuracy rows identical" true (serial = parallel)

let test_exploration_deterministic () =
  let applets = [ Jcvm.Applets.fib ] in
  let serial = Core.Exploration.run ~applets ~domains:1 () in
  let parallel = Core.Exploration.run ~applets ~domains:4 () in
  check_bool "exploration rows identical" true (serial = parallel)

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map propagates the first failure" `Quick
      test_map_propagates_failure;
    Alcotest.test_case "parallel run_levels = serial run_levels" `Quick
      test_run_levels_deterministic;
    Alcotest.test_case "parallel run_accuracy = serial run_accuracy" `Slow
      test_run_accuracy_deterministic;
    Alcotest.test_case "parallel exploration = serial exploration" `Quick
      test_exploration_deterministic;
  ]
