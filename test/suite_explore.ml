(* Adaptive design-space exploration (DESIGN.md section 12): the live
   mixed-level session behind Exploration's ~policy path, its acceptance
   contract against the fixed-level sweep, and the renderer's marking
   rules. *)

let fib = Jcvm.Applets.fib
let config () = List.hd Jcvm.Configs.standard

(* The degenerate policy: a constant-L1 session must reproduce the
   fixed-level row bit for bit — energy included, because the very same
   layer-1 front-end simulates every transaction. *)
let test_constant_policy_bit_exact () =
  let config = config () in
  let fixed = Core.Exploration.run_one ~level:Core.Level.L1 ~config fib in
  let pinned =
    Core.Exploration.run_one
      ~policy:(Hier.Policy.constant Hier.Level.L1)
      ~config fib
  in
  Alcotest.(check int) "cycles" fixed.Core.Exploration.cycles
    pinned.Core.Exploration.cycles;
  Alcotest.(check int)
    "transactions" fixed.Core.Exploration.transactions
    pinned.Core.Exploration.transactions;
  Alcotest.(check (option int))
    "value" fixed.Core.Exploration.value pinned.Core.Exploration.value;
  Alcotest.(check bool)
    "correct" fixed.Core.Exploration.correct pinned.Core.Exploration.correct;
  Alcotest.(check (float 0.0))
    "bus energy" fixed.Core.Exploration.bus_pj pinned.Core.Exploration.bus_pj;
  Alcotest.(check bool)
    "carries provenance"
    (pinned.Core.Exploration.provenance <> None)
    true

(* The exploration preset: functional fields bit-identical to the pure
   layer-1 sweep, spliced energy within the declared budget of the
   layer-1 figure.  This is the acceptance contract the whole adaptive
   sweep rides on. *)
let test_adaptive_sweep_acceptance () =
  let applets = [ fib ] in
  let l1 = Core.Exploration.run ~level:Core.Level.L1 ~applets () in
  let ad =
    Core.Exploration.run ~policy:(Hier.Policy.for_exploration ()) ~applets ()
  in
  Alcotest.(check int) "same grid" (List.length l1) (List.length ad);
  List.iter2
    (fun (a : Core.Exploration.row) (b : Core.Exploration.row) ->
      let name = a.Core.Exploration.config.Jcvm.Configs.name in
      Alcotest.(check string)
        "row order" name b.Core.Exploration.config.Jcvm.Configs.name;
      Alcotest.(check int)
        (name ^ " cycles") a.Core.Exploration.cycles b.Core.Exploration.cycles;
      Alcotest.(check int)
        (name ^ " transactions") a.Core.Exploration.transactions
        b.Core.Exploration.transactions;
      Alcotest.(check (option int))
        (name ^ " value") a.Core.Exploration.value b.Core.Exploration.value;
      Alcotest.(check bool)
        (name ^ " correct") a.Core.Exploration.correct
        b.Core.Exploration.correct;
      match b.Core.Exploration.provenance with
      | None -> Alcotest.fail (name ^ ": adaptive row without provenance")
      | Some splice ->
        let err, within =
          Hier.Splice.error_vs_reference splice
            ~reference_pj:a.Core.Exploration.bus_pj
        in
        if not within then
          Alcotest.failf "%s: spliced energy %.1f pJ off by %.1f, budget %.1f"
            name b.Core.Exploration.bus_pj err
            splice.Hier.Splice.error_bound_pj)
    l1 ad

(* Provenance bookkeeping: the windows are a partition of the row — the
   per-window energies sum to the row's bus_pj and the per-window
   transaction counts to the row's transaction count. *)
let test_provenance_sums () =
  let row =
    Core.Exploration.run_one
      ~policy:(Hier.Policy.for_exploration ())
      ~config:(config ()) fib
  in
  match row.Core.Exploration.provenance with
  | None -> Alcotest.fail "adaptive row without provenance"
  | Some splice ->
    let pj =
      List.fold_left
        (fun acc (w : Hier.Splice.window) -> acc +. w.Hier.Splice.bus_pj)
        0.0 splice.Hier.Splice.windows
    in
    let txns =
      List.fold_left
        (fun acc (w : Hier.Splice.window) -> acc + w.Hier.Splice.txns)
        0 splice.Hier.Splice.windows
    in
    Alcotest.(check (float 1e-6))
      "window energies sum to the row" row.Core.Exploration.bus_pj pj;
    Alcotest.(check (float 1e-6))
      "splice total agrees" row.Core.Exploration.bus_pj
      splice.Hier.Splice.total_bus_pj;
    Alcotest.(check int)
      "window txns sum to the row" row.Core.Exploration.transactions txns

(* run_one refuses a contradictory request. *)
let test_level_policy_exclusive () =
  Alcotest.check_raises "both ~level and ~policy"
    (Invalid_argument "Core.Exploration.run_one: pass either ~level or ~policy")
    (fun () ->
      ignore
        (Core.Exploration.run_one ~level:Core.Level.L1
           ~policy:(Hier.Policy.constant Hier.Level.L1)
           ~config:(config ()) fib))

(* Renderer marking rules on a synthetic group: the cheapest correct row
   gets "*", wrong rows get "!", and a wrong row is never best even when
   its energy is the lowest of the group. *)
let render_rows () =
  let mk name bus_pj correct : Core.Exploration.row =
    let config =
      List.find (fun c -> c.Jcvm.Configs.name = name) Jcvm.Configs.standard
    in
    {
      Core.Exploration.config;
      applet = "synthetic";
      level = Core.Level.L1;
      cycles = 100;
      bus_pj;
      transactions = 10;
      steps = 5;
      value = Some 42;
      correct;
      provenance = None;
    }
  in
  [
    mk "w8-dedicated" 50.0 false;
    (* wrong AND cheapest: must not be best *)
    mk "w16-dedicated" 80.0 true;
    mk "w32-plain" 90.0 true;
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_render_marks () =
  let rendered = Core.Exploration.render (render_rows ()) in
  Alcotest.(check bool)
    "wrong row flagged" true
    (contains ~sub:"! w8-dedicated" rendered);
  Alcotest.(check bool)
    "cheapest correct row is best" true
    (contains ~sub:"* w16-dedicated" rendered);
  (* The wrong row must not carry the best marker even though 50 < 80. *)
  Alcotest.(check bool)
    "wrong row never best" false
    (contains ~sub:"* w8-dedicated" rendered)

(* compile_window agrees with decide for every trigger shape, including
   the two scheduling triggers the exploration preset is built from. *)
let test_compile_window_agrees () =
  let policies =
    [
      Hier.Policy.constant Hier.Level.L2;
      Hier.Policy.script [ (10, Hier.Level.L2); (5, Hier.Level.L1) ];
      Hier.Policy.triggered ~base:Hier.Level.L2
        [
          Hier.Policy.Txn_window { lo = 0; hi = 8; level = Hier.Level.L1 };
          Hier.Policy.Every { period = 16; length = 4; level = Hier.Level.L1 };
          Hier.Policy.Addr_range
            { lo = 0x1000; hi = 0x2000; level = Hier.Level.L1 };
          Hier.Policy.Cycle_window { lo = 40; hi = 60; level = Hier.Level.L1 };
          Hier.Policy.Energy_rate_above
            { pj_per_cycle = 4.0; level = Hier.Level.L1 };
          Hier.Policy.Txn_rate_above
            { txns_per_kcycle = 900.0; level = Hier.Level.L1 };
        ];
      Hier.Policy.for_exploration ~warmup:4 ~period:8 ~refine:2 ();
    ]
  in
  List.iter
    (fun policy ->
      List.iter
        (fun (txns_per_kcycle, pj_per_cycle) ->
          let fast =
            Hier.Policy.compile_window policy ~txns_per_kcycle ~pj_per_cycle
          in
          for txn_index = 0 to 40 do
            List.iter
              (fun addr ->
                List.iter
                  (fun cycle ->
                    let slow =
                      Hier.Policy.decide policy
                        {
                          Hier.Policy.txn_index;
                          addr;
                          cycle;
                          txns_per_kcycle;
                          pj_per_cycle;
                        }
                    in
                    Alcotest.(check string)
                      (Printf.sprintf "%s @txn=%d addr=%#x cyc=%d"
                         (Hier.Policy.to_string policy)
                         txn_index addr cycle)
                      (Hier.Level.to_string slow)
                      (Hier.Level.to_string
                         (fast ~txn_index ~addr ~cycle)))
                  [ 0; 50; 45; 100 ])
              [ 0x0; 0x1800; 0x2000 ]
          done)
        [ (0.0, 0.0); (1000.0, 10.0) ])
    policies

(* The preset validates its schedule. *)
let test_preset_validation () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> Hier.Policy.for_exploration ~warmup:(-1) ());
  bad (fun () -> Hier.Policy.for_exploration ~period:0 ());
  bad (fun () -> Hier.Policy.for_exploration ~period:8 ~refine:9 ())

(* The adaptive cache study: same knee, rows carry provenance, and the
   captured post-cache traffic means fewer bus transactions as the cache
   grows. *)
let test_cache_study_adaptive () =
  let program = Soc.Asm.assemble (Core.Test_programs.bubble_sort ~n:6) in
  let sizes = [ None; Some 4 ] in
  let study =
    Core.Cache_study.run
      ~policy:(Hier.Policy.constant Hier.Level.L1)
      ~sizes ~name:"sort" program
  in
  Alcotest.(check int) "rows" 2 (List.length study.Core.Cache_study.rows);
  List.iter
    (fun (r : Core.Cache_study.row) ->
      Alcotest.(check bool) "provenance" true (r.Core.Cache_study.splice <> None);
      Alcotest.(check bool) "positive bus energy" true (r.Core.Cache_study.bus_pj > 0.0))
    study.Core.Cache_study.rows;
  match study.Core.Cache_study.rows with
  | [ nocache; cached ] ->
    Alcotest.(check bool)
      "cache cuts bus energy" true
      (cached.Core.Cache_study.bus_pj < nocache.Core.Cache_study.bus_pj);
    Alcotest.(check bool)
      "cache hits recorded" true
      (cached.Core.Cache_study.hit_rate_pct > 0.0)
  | _ -> Alcotest.fail "unexpected row count"

let suite =
  [
    Alcotest.test_case "constant policy row = fixed-level row" `Quick
      test_constant_policy_bit_exact;
    Alcotest.test_case "adaptive sweep: bit-exact + within budget" `Quick
      test_adaptive_sweep_acceptance;
    Alcotest.test_case "provenance sums to the row" `Quick test_provenance_sums;
    Alcotest.test_case "~level and ~policy are exclusive" `Quick
      test_level_policy_exclusive;
    Alcotest.test_case "renderer marks best and wrong rows" `Quick
      test_render_marks;
    Alcotest.test_case "compile_window agrees with decide" `Quick
      test_compile_window_agrees;
    Alcotest.test_case "for_exploration validates its schedule" `Quick
      test_preset_validation;
    Alcotest.test_case "cache study over the adaptive route" `Quick
      test_cache_study_adaptive;
  ]
