(* Multi-master fabric: arbitration policies, per-master energy
   attribution, bridged topologies, and first-class layer-3 windows. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_pj msg a b =
  Alcotest.check (Alcotest.float 0.0) msg a b (* exact float equality *)

(* --- arbiter --- *)

let test_fixed_priority () =
  let a = Ec.Arbiter.create ~masters:3 ~policy:Ec.Arbiter.Fixed_priority in
  check_bool "first attempt wins" true (Ec.Arbiter.attempt a 2);
  Ec.Arbiter.commit a 2;
  check_bool "one grant per cycle" false (Ec.Arbiter.attempt a 0);
  check_bool "loser recorded waiting" true (Ec.Arbiter.waiting a 0);
  Ec.Arbiter.new_cycle a;
  (* Master 0 outranks the repeat attempt from 2 under fixed priority. *)
  check_bool "low index outranks" false (Ec.Arbiter.attempt a 2);
  check_bool "winner" true (Ec.Arbiter.attempt a 0);
  Ec.Arbiter.commit a 0;
  check_int "grants counted" 1 (Ec.Arbiter.grants a 2)

let test_round_robin_rotates () =
  let a = Ec.Arbiter.create ~masters:2 ~policy:Ec.Arbiter.Round_robin in
  (* Both contend every cycle: grants must alternate. *)
  let winners = ref [] in
  for _ = 1 to 6 do
    let w =
      if Ec.Arbiter.attempt a 0 then 0
      else begin
        check_bool "someone wins" true (Ec.Arbiter.attempt a 1);
        1
      end
    in
    Ec.Arbiter.commit a w;
    ignore (Ec.Arbiter.attempt a 0);
    ignore (Ec.Arbiter.attempt a 1);
    winners := w :: !winners;
    Ec.Arbiter.new_cycle a
  done;
  Alcotest.(check (list int)) "alternating" [ 0; 1; 0; 1; 0; 1 ]
    (List.rev !winners);
  check_int "fair split" (Ec.Arbiter.grants a 0) (Ec.Arbiter.grants a 1)

let test_weighted_bursts () =
  let a =
    Ec.Arbiter.create ~masters:2 ~policy:(Ec.Arbiter.Weighted [| 2; 1 |])
  in
  let winners = ref [] in
  for _ = 1 to 6 do
    let w =
      if Ec.Arbiter.attempt a 0 then 0
      else begin
        check_bool "someone wins" true (Ec.Arbiter.attempt a 1);
        1
      end
    in
    Ec.Arbiter.commit a w;
    ignore (Ec.Arbiter.attempt a 0);
    ignore (Ec.Arbiter.attempt a 1);
    winners := w :: !winners;
    Ec.Arbiter.new_cycle a
  done;
  Alcotest.(check (list int)) "2:1 bursts" [ 0; 0; 1; 0; 0; 1 ]
    (List.rev !winners)

let test_refusal_keeps_pointer () =
  let a = Ec.Arbiter.create ~masters:2 ~policy:Ec.Arbiter.Round_robin in
  check_bool "granted" true (Ec.Arbiter.attempt a 0);
  (* The bus refused: the grant must not count or rotate the pointer. *)
  Ec.Arbiter.note_refused a 0;
  Ec.Arbiter.new_cycle a;
  check_bool "retry wins again" true (Ec.Arbiter.attempt a 0);
  Ec.Arbiter.commit a 0;
  check_int "only committed grants count" 1 (Ec.Arbiter.total_grants a)

let test_policy_strings () =
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (Ec.Arbiter.policy_to_string p))
        (Option.map Ec.Arbiter.policy_to_string
           (Ec.Arbiter.policy_of_string (Ec.Arbiter.policy_to_string p))))
    [
      Ec.Arbiter.Fixed_priority;
      Ec.Arbiter.Round_robin;
      Ec.Arbiter.Weighted [| 4; 2; 1 |];
    ];
  Alcotest.(check (option string)) "unknown" None
    (Option.map Ec.Arbiter.policy_to_string
       (Ec.Arbiter.policy_of_string "lottery"))

let test_arbiter_validation () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero masters" true
    (raises (fun () ->
         Ec.Arbiter.create ~masters:0 ~policy:Ec.Arbiter.Round_robin));
  check_bool "weight length" true
    (raises (fun () ->
         Ec.Arbiter.create ~masters:3
           ~policy:(Ec.Arbiter.Weighted [| 1; 2 |])));
  check_bool "zero weight" true
    (raises (fun () ->
         Ec.Arbiter.create ~masters:2 ~policy:(Ec.Arbiter.Weighted [| 1; 0 |])))

(* --- degenerate single master: fabric == plain bus --- *)

(* A one-master fabric over the system's meter, mirroring the wiring of
   [Core.Contention.run], but keeping the meter in reach so the
   attribution bucket can be compared against it bit for bit. *)
let run_one_master level trace =
  let system = Core.System.create ~level () in
  let kernel = Core.System.kernel system in
  let meter = Option.get (Core.System.meter system) in
  let tap =
    {
      Ec.Fabric.cycles = (fun () -> Power.Meter.cycles meter);
      last_cycle_pj = (fun () -> Power.Meter.last_cycle_pj meter);
    }
  in
  let fabric =
    Ec.Fabric.create ~masters:1 ~policy:Ec.Arbiter.Round_robin
      ~bus:(Core.System.port system) ~tap ()
  in
  Sim.Kernel.on_rising kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_rising fabric);
  Sim.Kernel.on_falling kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_falling fabric);
  let tm =
    Soc.Trace_master.create ~kernel ~port:(Ec.Fabric.port fabric 0)
      ~mode:`Serial trace
  in
  let cycles = Soc.Trace_master.run tm ~kernel () in
  (fabric, meter, cycles)

let test_degenerate_bit_exact () =
  let trace = Core.Workloads.table3_trace ~n:96 in
  List.iter
    (fun level ->
      let fabric, meter, cycles = run_one_master level trace in
      let direct = Core.Runner.run_trace ~level ~mode:`Serial trace in
      check_int
        (Core.Level.to_string level ^ " cycles")
        direct.Core.Runner.cycles cycles;
      check_int
        (Core.Level.to_string level ^ " txns")
        direct.Core.Runner.txns
        (Ec.Fabric.master_txns fabric 0);
      (* The bucket replays the meter's own per-cycle commits in order,
         so it equals the meter total exactly — even at the gate level,
         where [Diesel.total_pj] itself associates differently. *)
      check_pj
        (Core.Level.to_string level ^ " bucket = meter")
        (Power.Meter.total_pj meter)
        (Ec.Fabric.master_pj fabric 0);
      if level <> Core.Level.Rtl then
        check_pj
          (Core.Level.to_string level ^ " bucket = direct bus_pj")
          direct.Core.Runner.bus_pj
          (Ec.Fabric.master_pj fabric 0))
    Core.Level.timed

(* Read data must come back through the fabric's remapped transactions. *)
let test_read_data_roundtrip () =
  let system = Core.System.create ~level:Core.Level.L1 () in
  let kernel = Core.System.kernel system in
  let fabric =
    Ec.Fabric.create ~masters:1 ~policy:Ec.Arbiter.Fixed_priority
      ~bus:(Core.System.port system) ()
  in
  Sim.Kernel.on_rising kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_rising fabric);
  Sim.Kernel.on_falling kernel ~name:"fabric" (fun _ ->
      Ec.Fabric.on_falling fabric);
  let ram = Soc.Platform.Map.ram_base in
  let trace =
    [
      Ec.Trace.item
        (Ec.Txn.burst_write ~id:0 ram
           ~values:[| 0xAA; 0xBB; 0xCC; 0xDD |]);
      Ec.Trace.item (Ec.Txn.burst_read ~id:0 ram);
      Ec.Trace.item (Ec.Txn.single_read ~id:0 (ram + 8));
    ]
  in
  let tm =
    Soc.Trace_master.create ~kernel ~port:(Ec.Fabric.port fabric 0)
      ~mode:`Serial ~keep_results:true trace
  in
  ignore (Soc.Trace_master.run tm ~kernel ());
  match
    List.filter
      (fun t -> t.Ec.Txn.dir = Ec.Txn.Read)
      (Soc.Trace_master.results tm)
  with
  | [ burst; single ] ->
    Alcotest.(check (array int))
      "burst data" [| 0xAA; 0xBB; 0xCC; 0xDD |] burst.Ec.Txn.data;
    check_int "single data" 0xCC single.Ec.Txn.data.(0)
  | _ -> Alcotest.fail "expected two completed reads"

(* --- contention and conservation --- *)

let test_conservation_all_levels () =
  List.iter
    (fun level ->
      List.iter
        (fun topology ->
          let r =
            Core.Contention.run ~level ~topology
              (Core.Contention.default_masters ~n:96 topology)
          in
          let sum =
            List.fold_left
              (fun acc (row : Core.Contention.master_row) ->
                acc +. row.Core.Contention.energy_pj)
              0.0 r.Core.Contention.rows
          in
          check_pj
            (Printf.sprintf "%s/%s buckets sum to total"
               (Core.Level.to_string level)
               (Core.Contention.topology_to_string topology))
            r.Core.Contention.fabric_pj sum;
          List.iter
            (fun (row : Core.Contention.master_row) ->
              check_int
                (Core.Contention.kind_to_string row.Core.Contention.kind
                ^ " error-free")
                0 row.Core.Contention.errors)
            r.Core.Contention.rows)
        [ Core.Contention.Single; Core.Contention.Bridged ])
    Core.Level.timed

let test_bridge_routing () =
  let far_base = fst Core.Contention.far_window in
  (* 16 words as 4-beat bursts: the read half crosses, the writes stay. *)
  let masters =
    [ (Core.Contention.Dma, Core.Workloads.dma_trace ~words:16 ~src:far_base ()) ]
  in
  let r =
    Core.Contention.run ~level:Core.Level.L1 ~topology:Core.Contention.Bridged
      ~bridge_pj_per_beat:1.5 masters
  in
  check_int "four crossings" 4 r.Core.Contention.crossings;
  check_pj "crossing energy per beat" (1.5 *. 16.0) r.Core.Contention.bridge_pj;
  let row = List.hd r.Core.Contention.rows in
  check_int "all txns complete" 8 row.Core.Contention.txns;
  check_int "no errors" 0 row.Core.Contention.errors;
  (* Same traffic on a single bus (far window unmapped there would
     error, so source from FLASH): nothing crosses. *)
  let single =
    Core.Contention.run ~level:Core.Level.L1
      [ (Core.Contention.Dma, Core.Workloads.dma_trace ~words:16 ()) ]
  in
  check_int "single topology never crosses" 0 single.Core.Contention.crossings;
  check_pj "no bridge energy" 0.0 single.Core.Contention.bridge_pj

let test_contention_rejects_l3 () =
  Alcotest.check_raises "L3 has nothing to arbitrate"
    (Invalid_argument
       "Core.Contention.run: fabric masters drive timed buses (rtl/l1/l2)")
    (fun () ->
      ignore
        (Core.Contention.run ~level:Core.Level.L3
           [ (Core.Contention.Cpu, Core.Workloads.table3_trace ~n:4) ]))

(* --- layer-3 adaptive windows --- *)

let test_l3_constant_equals_direct () =
  let trace = Core.Workloads.table3_trace ~n:128 in
  let direct = Core.Runner.run_trace ~level:Core.Level.L3 trace in
  let adaptive =
    Core.Runner.run_adaptive
      ~policy:(Hier.Policy.constant Core.Level.L3)
      trace
  in
  check_int "cycles" direct.Core.Runner.cycles adaptive.Core.Runner.cycles;
  check_int "txns" direct.Core.Runner.txns adaptive.Core.Runner.txns;
  check_pj "bus energy" direct.Core.Runner.bus_pj adaptive.Core.Runner.bus_pj

let test_l3_window_provenance () =
  let trace = Core.Workloads.table3_trace ~n:96 in
  let adaptive =
    Core.Runner.run_adaptive
      ~policy:
        (Hier.Policy.script
           [ (32, Core.Level.L2); (32, Core.Level.L3); (32, Core.Level.L1) ])
      trace
  in
  let splice = adaptive.Core.Runner.splice in
  let windows = splice.Hier.Splice.windows in
  check_int "three windows" 3 (List.length windows);
  List.iter
    (fun (w : Hier.Splice.window) ->
      let expect =
        match w.Hier.Splice.level with
        | Core.Level.Rtl | Core.Level.L1 -> Hier.Splice.Cycle_accurate
        | Core.Level.L2 -> Hier.Splice.Lumped
        | Core.Level.L3 -> Hier.Splice.Bridged
      in
      check_bool
        (Printf.sprintf "window %d provenance" w.Hier.Splice.index)
        true
        (w.Hier.Splice.provenance = expect);
      if w.Hier.Splice.level = Core.Level.L3 then
        check_pj "bridged error budget"
          (0.35 *. w.Hier.Splice.bus_pj)
          w.Hier.Splice.err_bound_pj)
    windows;
  check_bool "an L3 window ran" true
    (List.exists
       (fun (w : Hier.Splice.window) -> w.Hier.Splice.level = Core.Level.L3)
       windows);
  check_int "all transactions accounted" 96 splice.Hier.Splice.total_txns

(* --- compiled fabric plans (DESIGN.md section 18) --- *)

let check_result_bit_exact msg (a : Core.Contention.result)
    (b : Core.Contention.result) =
  check_int (msg ^ " cycles") a.Core.Contention.cycles b.Core.Contention.cycles;
  check_int (msg ^ " crossings") a.Core.Contention.crossings
    b.Core.Contention.crossings;
  check_pj (msg ^ " fabric total") a.Core.Contention.fabric_pj
    b.Core.Contention.fabric_pj;
  check_pj (msg ^ " bus total") a.Core.Contention.bus_pj
    b.Core.Contention.bus_pj;
  check_pj (msg ^ " bridge") a.Core.Contention.bridge_pj
    b.Core.Contention.bridge_pj;
  List.iter2
    (fun (x : Core.Contention.master_row) (y : Core.Contention.master_row) ->
      let who = msg ^ " " ^ Core.Contention.kind_to_string x.Core.Contention.kind in
      check_int (who ^ " txns") x.Core.Contention.txns y.Core.Contention.txns;
      check_int (who ^ " beats") x.Core.Contention.beats y.Core.Contention.beats;
      check_int (who ^ " grants") x.Core.Contention.grants
        y.Core.Contention.grants;
      check_pj (who ^ " bucket") x.Core.Contention.energy_pj
        y.Core.Contention.energy_pj)
    a.Core.Contention.rows b.Core.Contention.rows

(* The whole compilable grid: compiled replay must be bit-identical to
   the interpreted fabric, buckets included, at every policy x topology
   x timed TLM level. *)
let test_compiled_grid_bit_exact () =
  List.iter
    (fun level ->
      List.iter
        (fun policy ->
          List.iter
            (fun topology ->
              let masters = Core.Contention.default_masters ~n:48 topology in
              let interp =
                Core.Contention.run ~level ~policy ~topology masters
              in
              let comp =
                Core.Contention.run ~level ~policy ~topology ~compiled:true
                  masters
              in
              check_result_bit_exact
                (Printf.sprintf "%s/%s/%s" (Core.Level.to_string level)
                   (Ec.Arbiter.policy_to_string policy)
                   (Core.Contention.topology_to_string topology))
                interp comp)
            [ Core.Contention.Single; Core.Contention.Bridged ])
        [
          Ec.Arbiter.Fixed_priority;
          Ec.Arbiter.Round_robin;
          Ec.Arbiter.Weighted [| 4; 2; 1 |];
        ])
    [ Core.Level.L1; Core.Level.L2 ]

(* Multi-point evaluation must equal N single-point evaluations. *)
let test_fabric_multipoint () =
  let masters =
    Core.Contention.default_masters ~n:48 Core.Contention.Bridged
  in
  List.iter
    (fun level ->
      let plan =
        Core.Contention.compile ~level ~topology:Core.Contention.Bridged
          masters
      in
      let points =
        List.map
          (fun s ->
            {
              Compile.Eval.table =
                Power.Characterization.scale Power.Characterization.default s;
              l2_params = None;
            })
          [ 0.5; 1.0; 2.0 ]
      in
      let multi = Compile.Eval.eval_fabric_multi plan ~points in
      List.iter2
        (fun (pt : Compile.Eval.point) (o : Compile.Eval.fabric_outcome) ->
          let single = Compile.Eval.eval_fabric ~table:pt.Compile.Eval.table plan in
          check_pj "multi total = single" single.Compile.Eval.fabric_pj
            o.Compile.Eval.fabric_pj;
          check_pj "multi bridge = single" single.Compile.Eval.fabric_bridge_pj
            o.Compile.Eval.fabric_bridge_pj;
          check_pj "multi near = single" single.Compile.Eval.near_bus_pj
            o.Compile.Eval.near_bus_pj;
          check_pj "multi far = single" single.Compile.Eval.far_bus_pj
            o.Compile.Eval.far_bus_pj;
          Array.iteri
            (fun m b ->
              check_pj
                (Printf.sprintf "multi bucket %d = single" m)
                single.Compile.Eval.buckets.(m) b)
            o.Compile.Eval.buckets)
        points multi)
    [ Core.Level.L1; Core.Level.L2 ]

(* A pooled fabric session, reset and re-armed, replays bit-identically
   to a fresh build — including the bridged far RAM, whose store reset
   is part of the session protocol. *)
let test_pooled_fabric_session () =
  let pool = Core.Pool.create () in
  List.iter
    (fun topology ->
      let masters = Core.Contention.default_masters ~n:48 topology in
      let fresh = Core.Contention.run ~level:Core.Level.L1 ~topology masters in
      let first =
        Core.Contention.run ~level:Core.Level.L1 ~topology ~pool masters
      in
      let reused =
        Core.Contention.run ~level:Core.Level.L1 ~topology ~pool masters
      in
      let msg =
        "pooled/" ^ Core.Contention.topology_to_string topology
      in
      check_result_bit_exact (msg ^ " first") fresh first;
      check_result_bit_exact (msg ^ " reused") fresh reused)
    [ Core.Contention.Single; Core.Contention.Bridged ]

(* Degenerate single-master fabric plan: the near body is exactly the
   trace plan's body — same integer residue, same energies. *)
let test_degenerate_plan_equals_trace_plan () =
  let trace = Core.Workloads.table3_trace ~n:64 in
  List.iter
    (fun level ->
      let fplan =
        Core.Contention.compile ~level ~mode:`Serial
          [ (Core.Contention.Cpu, trace) ]
      in
      let tplan = Core.Runner.compile_trace ~level ~mode:`Serial trace in
      let near = fplan.Compile.Plan.near in
      check_bool
        (Core.Level.to_string level ^ " bodies equal")
        true
        (near.Compile.Plan.body = tplan.Compile.Plan.body);
      let nm = near.Compile.Plan.meta and tm = tplan.Compile.Plan.meta in
      check_int
        (Core.Level.to_string level ^ " txns")
        tm.Compile.Plan.txns nm.Compile.Plan.txns;
      check_int
        (Core.Level.to_string level ^ " beats")
        tm.Compile.Plan.beats nm.Compile.Plan.beats;
      let table = Power.Characterization.default in
      let fo = Compile.Eval.eval_fabric ~table fplan in
      let to_ = Compile.Eval.eval ~table tplan in
      check_pj
        (Core.Level.to_string level ^ " bucket = trace plan energy")
        to_.Compile.Eval.bus_pj
        fo.Compile.Eval.buckets.(0);
      check_pj
        (Core.Level.to_string level ^ " near total = trace plan energy")
        to_.Compile.Eval.bus_pj fo.Compile.Eval.near_bus_pj)
    [ Core.Level.L1; Core.Level.L2 ]

(* --- qcheck properties --- *)

module Gen = QCheck.Gen

let gen_policy n =
  Gen.oneofl
    [
      Ec.Arbiter.Fixed_priority;
      Ec.Arbiter.Round_robin;
      Ec.Arbiter.Weighted (Array.init n (fun i -> 1 + ((i * 3) mod 4)));
    ]

let gen_level = Gen.oneofl Core.Level.timed

let prop_no_starvation =
  QCheck.Test.make ~name:"round-robin starves no master" ~count:20
    QCheck.(make Gen.(pair (int_range 1 3) (int_bound 1000)))
    (fun (masters, seed) ->
      let rng = Sim.Rng.create ~seed in
      let traces =
        List.init masters (fun i ->
            ( (match i with
              | 0 -> Core.Contention.Cpu
              | 1 -> Core.Contention.Dma
              | _ -> Core.Contention.Crypto),
              Core.Workloads.random_trace ~rng ~n:(16 + (8 * i)) () ))
      in
      let r =
        Core.Contention.run ~level:Core.Level.L1
          ~policy:Ec.Arbiter.Round_robin traces
      in
      List.for_all2
        (fun (_, trace) (row : Core.Contention.master_row) ->
          row.Core.Contention.txns = Ec.Trace.total_txns trace
          && row.Core.Contention.grants >= Ec.Trace.total_txns trace)
        traces r.Core.Contention.rows)

let prop_conservation =
  QCheck.Test.make ~name:"fabric energy = sum of master buckets" ~count:15
    QCheck.(make Gen.(triple gen_level (gen_policy 3) bool))
    (fun (level, policy, bridged) ->
      let topology =
        if bridged then Core.Contention.Bridged else Core.Contention.Single
      in
      let r =
        Core.Contention.run ~level ~policy ~topology
          (Core.Contention.default_masters ~n:48 topology)
      in
      let sum =
        List.fold_left
          (fun acc (row : Core.Contention.master_row) ->
            acc +. row.Core.Contention.energy_pj)
          0.0 r.Core.Contention.rows
      in
      sum = r.Core.Contention.fabric_pj)

let prop_degenerate =
  QCheck.Test.make ~name:"1-master fabric = plain bus, any level" ~count:12
    QCheck.(make Gen.(pair gen_level (int_bound 1000)))
    (fun (level, seed) ->
      let rng = Sim.Rng.create ~seed in
      let trace = Core.Workloads.random_trace ~rng ~n:40 () in
      let fabric, meter, cycles = run_one_master level trace in
      let direct = Core.Runner.run_trace ~level ~mode:`Serial trace in
      direct.Core.Runner.cycles = cycles
      && direct.Core.Runner.txns = Ec.Fabric.master_txns fabric 0
      && Power.Meter.total_pj meter = Ec.Fabric.master_pj fabric 0)

let prop_compiled_bit_exact =
  QCheck.Test.make ~name:"compiled fabric replay bit-exact (random mix)"
    ~count:10
    QCheck.(
      make
        Gen.(
          quad (oneofl [ Core.Level.L1; Core.Level.L2 ]) (gen_policy 3) bool
            (int_bound 1000)))
    (fun (level, policy, bridged, seed) ->
      let topology =
        if bridged then Core.Contention.Bridged else Core.Contention.Single
      in
      let rng = Sim.Rng.create ~seed in
      let masters =
        (Core.Contention.Cpu, Core.Workloads.random_trace ~rng ~n:32 ())
        :: List.tl (Core.Contention.default_masters ~n:32 topology)
      in
      let interp = Core.Contention.run ~level ~policy ~topology masters in
      let comp =
        Core.Contention.run ~level ~policy ~topology ~compiled:true masters
      in
      interp.Core.Contention.cycles = comp.Core.Contention.cycles
      && interp.Core.Contention.fabric_pj = comp.Core.Contention.fabric_pj
      && interp.Core.Contention.bridge_pj = comp.Core.Contention.bridge_pj
      && List.for_all2
           (fun (a : Core.Contention.master_row)
                (b : Core.Contention.master_row) ->
             a.Core.Contention.energy_pj = b.Core.Contention.energy_pj
             && a.Core.Contention.grants = b.Core.Contention.grants)
           interp.Core.Contention.rows comp.Core.Contention.rows)

let prop_pooled_session_bit_exact =
  QCheck.Test.make ~name:"pooled fabric session bit-exact after reset"
    ~count:8
    QCheck.(make Gen.(triple (gen_policy 3) bool (int_bound 1000)))
    (fun (policy, bridged, seed) ->
      let topology =
        if bridged then Core.Contention.Bridged else Core.Contention.Single
      in
      let rng = Sim.Rng.create ~seed in
      let masters =
        (Core.Contention.Cpu, Core.Workloads.random_trace ~rng ~n:24 ())
        :: List.tl (Core.Contention.default_masters ~n:24 topology)
      in
      let pool = Core.Pool.create () in
      let fresh =
        Core.Contention.run ~level:Core.Level.L1 ~policy ~topology masters
      in
      let _first =
        Core.Contention.run ~level:Core.Level.L1 ~policy ~topology ~pool
          masters
      in
      let reused =
        Core.Contention.run ~level:Core.Level.L1 ~policy ~topology ~pool
          masters
      in
      fresh.Core.Contention.cycles = reused.Core.Contention.cycles
      && fresh.Core.Contention.fabric_pj = reused.Core.Contention.fabric_pj
      && List.for_all2
           (fun (a : Core.Contention.master_row)
                (b : Core.Contention.master_row) ->
             a.Core.Contention.energy_pj = b.Core.Contention.energy_pj)
           fresh.Core.Contention.rows reused.Core.Contention.rows)

let suite =
  [
    Alcotest.test_case "fixed priority order" `Quick test_fixed_priority;
    Alcotest.test_case "round robin rotates" `Quick test_round_robin_rotates;
    Alcotest.test_case "weighted grant bursts" `Quick test_weighted_bursts;
    Alcotest.test_case "bus refusal keeps pointer" `Quick
      test_refusal_keeps_pointer;
    Alcotest.test_case "policy string roundtrip" `Quick test_policy_strings;
    Alcotest.test_case "arbiter validation" `Quick test_arbiter_validation;
    Alcotest.test_case "degenerate fabric bit-exact" `Quick
      test_degenerate_bit_exact;
    Alcotest.test_case "read data roundtrip" `Quick test_read_data_roundtrip;
    Alcotest.test_case "attribution conserves" `Quick
      test_conservation_all_levels;
    Alcotest.test_case "bridge routing and energy" `Quick test_bridge_routing;
    Alcotest.test_case "contention rejects L3" `Quick test_contention_rejects_l3;
    Alcotest.test_case "constant L3 = direct L3" `Quick
      test_l3_constant_equals_direct;
    Alcotest.test_case "L3 window provenance" `Quick test_l3_window_provenance;
    Alcotest.test_case "compiled grid bit-exact" `Quick
      test_compiled_grid_bit_exact;
    Alcotest.test_case "fabric multi-point = N single points" `Quick
      test_fabric_multipoint;
    Alcotest.test_case "pooled fabric session replays" `Quick
      test_pooled_fabric_session;
    Alcotest.test_case "degenerate fabric plan = trace plan" `Quick
      test_degenerate_plan_equals_trace_plan;
    QCheck_alcotest.to_alcotest prop_no_starvation;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_degenerate;
    QCheck_alcotest.to_alcotest prop_compiled_bit_exact;
    QCheck_alcotest.to_alcotest prop_pooled_session_bit_exact;
  ]
