let () =
  Alcotest.run "smartcard-energy"
    [
      ("sim", Suite_sim.suite);
      ("ec", Suite_ec.suite);
      ("bus", Suite_bus.suite);
      ("levels", Suite_levels.suite);
      ("tlm3", Suite_tlm3.suite);
      ("power", Suite_power.suite);
      ("soc", Suite_soc.suite);
      ("isa-cpu", Suite_isa.suite);
      ("jcvm", Suite_jcvm.suite);
      ("core", Suite_core.suite);
      ("iso7816", Suite_iso7816.suite);
      ("hier", Suite_hier.suite);
      ("fabric", Suite_fabric.suite);
      ("explore", Suite_explore.suite);
      ("obs", Suite_obs.suite);
      ("integration", Suite_integration.suite);
      ("parallel", Suite_parallel.suite);
      ("serve", Suite_serve.suite);
      ("properties", Suite_props.suite);
    ]
